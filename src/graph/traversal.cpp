#include "graph/traversal.hpp"

#include <queue>

#include "support/assert.hpp"

namespace spar::graph {

std::vector<std::size_t> bfs_hops(const CSRGraph& g, Vertex source) {
  SPAR_CHECK(source < g.num_vertices(), "bfs_hops: source out of range");
  std::vector<std::size_t> hops(g.num_vertices(), static_cast<std::size_t>(-1));
  std::queue<Vertex> frontier;
  hops[source] = 0;
  frontier.push(source);
  while (!frontier.empty()) {
    const Vertex v = frontier.front();
    frontier.pop();
    for (const Arc& arc : g.neighbors(v)) {
      if (hops[arc.to] == static_cast<std::size_t>(-1)) {
        hops[arc.to] = hops[v] + 1;
        frontier.push(arc.to);
      }
    }
  }
  return hops;
}

std::vector<Vertex> connected_components(const CSRGraph& g, Vertex* num_components) {
  const Vertex n = g.num_vertices();
  std::vector<Vertex> comp(n, kInvalidVertex);
  Vertex next = 0;
  std::vector<Vertex> stack;
  for (Vertex start = 0; start < n; ++start) {
    if (comp[start] != kInvalidVertex) continue;
    comp[start] = next;
    stack.push_back(start);
    while (!stack.empty()) {
      const Vertex v = stack.back();
      stack.pop_back();
      for (const Arc& arc : g.neighbors(v)) {
        if (comp[arc.to] == kInvalidVertex) {
          comp[arc.to] = next;
          stack.push_back(arc.to);
        }
      }
    }
    ++next;
  }
  if (num_components != nullptr) *num_components = next;
  return comp;
}

bool is_connected(const CSRGraph& g) {
  if (g.num_vertices() == 0) return true;
  Vertex k = 0;
  connected_components(g, &k);
  return k == 1;
}

std::vector<double> dijkstra(const CSRGraph& g, Vertex source,
                             const std::vector<bool>* edge_alive, double cutoff) {
  SPAR_CHECK(source < g.num_vertices(), "dijkstra: source out of range");
  std::vector<double> dist(g.num_vertices(), kInfDist);
  using Item = std::pair<double, Vertex>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> heap;
  dist[source] = 0.0;
  heap.push({0.0, source});
  while (!heap.empty()) {
    const auto [d, v] = heap.top();
    heap.pop();
    if (d > dist[v]) continue;  // stale entry
    if (d > cutoff) break;
    for (const Arc& arc : g.neighbors(v)) {
      if (edge_alive != nullptr && !(*edge_alive)[arc.id]) continue;
      const double nd = d + 1.0 / arc.w;
      if (nd < dist[arc.to]) {
        dist[arc.to] = nd;
        heap.push({nd, arc.to});
      }
    }
  }
  return dist;
}

}  // namespace spar::graph
