// Compressed sparse row adjacency view of an edge list. Construction is
// parallel (counting sort over endpoints). Each arc remembers the
// originating EdgeId so algorithms can mark edges (bundle membership, alive
// masks) on the parent edge list.
//
// The sparsification round loop rebuilds the adjacency every round from a
// shrinking edge set; rebuild() re-populates this object in place, reusing
// the offsets/arcs/cursor buffers, so steady-state rounds allocate nothing.
// Arcs of a vertex are sorted by (target, edge id), a canonical order that is
// independent of thread count and of which overload built the structure.
#pragma once

#include <span>
#include <vector>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"

namespace spar::graph {

/// Scatter-path policy for CSRGraph::rebuild. kAuto (the default) picks the
/// atomic-scatter parallel build only when it can win: enough edges per
/// effective thread (min of the OpenMP budget and the hardware's cores) to
/// amortize the atomics. On a single core, or for small m, the serial path is
/// ~2.5x faster than paying for atomics nobody parallelizes (BENCH_pr2 /
/// BENCH_pr3 record the crossover). The forced modes exist for tests and the
/// bench_io crossover sweep; both paths produce bit-identical structures.
enum class CsrBuildPath { kAuto, kSerial, kParallel };

void set_csr_build_path(CsrBuildPath policy) noexcept;
CsrBuildPath csr_build_path() noexcept;

/// True when rebuild() would take the atomic-scatter path for m edges under
/// the current policy and thread budget.
bool csr_parallel_build_enabled(std::size_t m) noexcept;

struct Arc {
  Vertex to = 0;
  double w = 0.0;
  EdgeId id = kInvalidEdge;
};

class CSRGraph {
 public:
  CSRGraph() = default;
  explicit CSRGraph(const Graph& g) { rebuild(g); }
  explicit CSRGraph(const EdgeView& view) { rebuild(view); }

  /// Re-populate from an edge list, reusing internal buffers. The result is
  /// identical to constructing a fresh CSRGraph from the same edges.
  void rebuild(const Graph& g);
  void rebuild(const EdgeView& view);

  Vertex num_vertices() const { return static_cast<Vertex>(offsets_.size() - 1); }
  std::size_t num_arcs() const { return arcs_.size(); }  ///< = 2 * num_edges

  std::span<const Arc> neighbors(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

  std::size_t max_degree() const;

 private:
  template <typename EdgeAt>
  void rebuild_impl(Vertex n, std::size_t m, EdgeAt&& at);

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;
  std::vector<std::size_t> cursor_;  // size n scatter scratch, reused
};

}  // namespace spar::graph
