// Compressed sparse row adjacency view of a Graph. Construction is
// OpenMP-parallel (counting sort over endpoints). Each arc remembers the
// originating EdgeId so algorithms can mark edges (bundle membership, alive
// masks) on the parent edge list.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"

namespace spar::graph {

struct Arc {
  Vertex to = 0;
  double w = 0.0;
  EdgeId id = kInvalidEdge;
};

class CSRGraph {
 public:
  CSRGraph() = default;
  explicit CSRGraph(const Graph& g);

  Vertex num_vertices() const { return static_cast<Vertex>(offsets_.size() - 1); }
  std::size_t num_arcs() const { return arcs_.size(); }  ///< = 2 * num_edges

  std::span<const Arc> neighbors(Vertex v) const {
    return {arcs_.data() + offsets_[v], arcs_.data() + offsets_[v + 1]};
  }

  std::size_t degree(Vertex v) const { return offsets_[v + 1] - offsets_[v]; }

  std::size_t max_degree() const;

 private:
  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Arc> arcs_;
};

}  // namespace spar::graph
