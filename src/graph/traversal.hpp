// BFS, connectivity, and Dijkstra shortest paths.
//
// Distances for spectral work are always *resistances* (1/w): the paper's
// stretch of an edge e over H is  w_e * dist_H(u, v)  with dist measured in
// resistance lengths. dijkstra() therefore defaults to length(e) = 1/w(e).
#pragma once

#include <functional>
#include <limits>
#include <vector>

#include "graph/csr.hpp"

namespace spar::graph {

inline constexpr double kInfDist = std::numeric_limits<double>::infinity();

/// Hop distances from `source`; unreachable vertices get SIZE_MAX.
std::vector<std::size_t> bfs_hops(const CSRGraph& g, Vertex source);

/// Component id per vertex, ids in [0, num_components).
std::vector<Vertex> connected_components(const CSRGraph& g, Vertex* num_components = nullptr);

bool is_connected(const CSRGraph& g);

/// Resistance-length shortest path distances from `source`.
/// `edge_alive` (optional) restricts traversal to edges with alive[id] true,
/// which is how "distance within the spanner H" is evaluated without
/// materializing subgraphs. `cutoff`: stop expanding labels > cutoff
/// (distances beyond it are reported as kInfDist).
std::vector<double> dijkstra(
    const CSRGraph& g, Vertex source,
    const std::vector<bool>* edge_alive = nullptr,
    double cutoff = kInfDist);

}  // namespace spar::graph
