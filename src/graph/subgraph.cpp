#include "graph/subgraph.hpp"

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace spar::graph {

InducedSubgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep_vertex) {
  SPAR_CHECK(keep_vertex.size() == g.num_vertices(),
             "induced_subgraph: mask size mismatch");
  InducedSubgraph out;
  out.old_to_new.assign(g.num_vertices(), kInvalidVertex);
  for (Vertex v = 0; v < g.num_vertices(); ++v) {
    if (keep_vertex[v]) {
      out.old_to_new[v] = static_cast<Vertex>(out.new_to_old.size());
      out.new_to_old.push_back(v);
    }
  }
  Graph sub(static_cast<Vertex>(out.new_to_old.size()));
  for (const Edge& e : g.edges()) {
    const Vertex u = out.old_to_new[e.u];
    const Vertex v = out.old_to_new[e.v];
    if (u != kInvalidVertex && v != kInvalidVertex) sub.add_edge(u, v, e.w);
  }
  out.graph = std::move(sub);
  return out;
}

InducedSubgraph largest_component(const Graph& g) {
  if (g.num_vertices() == 0) return induced_subgraph(g, {});
  Vertex count = 0;
  const auto comp = connected_components(CSRGraph(g), &count);
  std::vector<std::size_t> sizes(count, 0);
  for (Vertex v = 0; v < g.num_vertices(); ++v) ++sizes[comp[v]];
  const Vertex best = static_cast<Vertex>(
      std::max_element(sizes.begin(), sizes.end()) - sizes.begin());
  std::vector<bool> keep(g.num_vertices());
  for (Vertex v = 0; v < g.num_vertices(); ++v) keep[v] = comp[v] == best;
  return induced_subgraph(g, keep);
}

}  // namespace spar::graph
