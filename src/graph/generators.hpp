// Synthetic workload generators.
//
// These cover the graph families that stress spectral sparsifiers in
// qualitatively different ways:
//  * grids (Remark 1: image-affinity graphs; high diameter, low expansion)
//  * Erdos-Renyi / random regular (expanders: uniform sampling is already OK)
//  * dumbbell (two dense blobs joined by one bridge: uniform sampling fails,
//    the spanner bundle must certify and keep the bridge)
//  * preferential attachment / Watts-Strogatz (skewed degrees, local+long
//    range mixtures)
//  * complete graphs (densest case; sparsifier size is all that matters)
//
// Every generator takes an explicit seed; weights default to 1 and can be
// randomized with randomize_weights().
#pragma once

#include <cstdint>
#include <string>

#include "graph/graph.hpp"

namespace spar::graph {

/// Parses a `<family>:<params>[:seed]` synthetic-workload spec (a leading
/// `gen:` prefix is accepted and stripped): `grid:RxC`, `wgrid:RxC`
/// (randomized weights), `er:N` / `wer:N` (connected Erdos-Renyi, expected
/// degree 16), `complete:N`, `pa:N` (preferential attachment), `ws:N`
/// (Watts-Strogatz). This is the one gen vocabulary shared by sparsify_tool
/// and the solver service's load generator, so client and server can name
/// the SAME graph from a spec string. Throws spar::Error on malformed specs.
Graph generate_spec(const std::string& spec);

Graph path_graph(Vertex n, double w = 1.0);
Graph cycle_graph(Vertex n, double w = 1.0);
Graph star_graph(Vertex n, double w = 1.0);
Graph complete_graph(Vertex n, double w = 1.0);
Graph complete_bipartite(Vertex a, Vertex b, double w = 1.0);
Graph binary_tree(Vertex n, double w = 1.0);

/// rows x cols 4-neighbour grid.
Graph grid2d(Vertex rows, Vertex cols, double w = 1.0);
/// nx x ny x nz 6-neighbour grid.
Graph grid3d(Vertex nx, Vertex ny, Vertex nz, double w = 1.0);

/// G(n, p); expected m = p * n(n-1)/2. Connectivity is not enforced.
Graph erdos_renyi(Vertex n, double p, std::uint64_t seed);

/// G(n, p) conditioned on connectivity: a uniformly random spanning-tree-ish
/// backbone (random permutation path) is added first.
Graph connected_erdos_renyi(Vertex n, double p, std::uint64_t seed);

/// Random simple d-regular graph via stub pairing with switch repair: bad
/// pairs (self-loops, duplicates) are fixed by degree-preserving edge
/// switches, so every vertex has degree exactly d. Requires n*d even and
/// d < n (else no simple d-regular graph exists).
Graph random_regular(Vertex n, Vertex d, std::uint64_t seed);

/// Barabasi-Albert preferential attachment: each new vertex attaches k edges.
Graph preferential_attachment(Vertex n, Vertex k, std::uint64_t seed);

/// Watts-Strogatz small world: ring lattice with 2k neighbours, each edge
/// rewired with probability beta.
Graph watts_strogatz(Vertex n, Vertex k, double beta, std::uint64_t seed);

/// Two complete graphs of size half, joined by a single bridge edge of weight
/// bridge_w. The canonical uniform-sampling failure case.
Graph dumbbell(Vertex half, double bridge_w = 1.0, std::uint64_t seed = 0);

/// Two complete graphs joined by a path of `path_len` edges.
Graph barbell(Vertex half, Vertex path_len, double w = 1.0);

/// Replace every weight with exp(U[-log_range, log_range]) (log-uniform),
/// deterministically per edge index. range must be >= 1.
Graph randomize_weights(const Graph& g, double log_range, std::uint64_t seed);

}  // namespace spar::graph
