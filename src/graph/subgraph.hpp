// Vertex-subset operations: induced subgraphs with index compaction and
// largest-connected-component extraction. These make the library robust on
// real inputs (sparsification and solving assume connected graphs; users
// extract the giant component first).
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace spar::graph {

struct InducedSubgraph {
  Graph graph;
  /// old vertex id -> new vertex id (kInvalidVertex if dropped).
  std::vector<Vertex> old_to_new;
  /// new vertex id -> old vertex id.
  std::vector<Vertex> new_to_old;
};

/// Subgraph induced by `keep_vertex`; vertices are renumbered compactly.
InducedSubgraph induced_subgraph(const Graph& g, const std::vector<bool>& keep_vertex);

/// The largest connected component (by vertex count), compactly renumbered.
InducedSubgraph largest_component(const Graph& g);

}  // namespace spar::graph
