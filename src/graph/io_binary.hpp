// Versioned binary graph format ("SPB"): the on-disk mirror of EdgeArena.
//
// Layout (all integers little-endian, weights IEEE-754 binary64):
//
//   offset  size  field
//   0       8     magic  "SPARBIN\0"
//   8       4     version (currently 1)
//   12      4     flags   (reserved, must be 0)
//   16      8     n       number of vertices
//   24      8     m       number of edges
//   32      8     checksum over the payload (chunked FNV-1a, see io_binary.cpp)
//   40      4*m   u[]     edge sources   (uint32)
//   ..      4*m   v[]     edge targets   (uint32)
//   ..      8*m   w[]     edge weights   (double)
//
// The payload is exactly EdgeArena's SoA arrays, so loading is three
// contiguous reads straight into the arena -- no per-edge add_edge loop, no
// parsing. Edge order is preserved bit-for-bit, which matters: edge ids are
// positional throughout the round pipeline (DESIGN.md §3).
//
// Readers validate magic/version/flags, the checksum, that the payload length
// matches the header, and every edge (endpoint range, self-loops, weight
// positivity/finiteness), throwing spar::Error on any mismatch.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"
#include "graph/io.hpp"

namespace spar::graph {

inline constexpr char kBinaryMagic[8] = {'S', 'P', 'A', 'R', 'B', 'I', 'N', '\0'};
inline constexpr std::uint32_t kBinaryVersion = 1;

/// Bytes a graph with m edges occupies on disk (header + payload).
std::size_t binary_file_size(std::size_t m);

void write_binary(std::ostream& out, const EdgeView& view);
void write_binary(std::ostream& out, const Graph& g);

/// Reads the full format into an existing arena (buffers reused).
void read_binary(std::istream& in, EdgeArena& arena);
Graph read_binary(std::istream& in);

void save_binary(const std::string& path, const Graph& g);
void save_binary(const std::string& path, const EdgeView& view);
void load_binary(const std::string& path, EdgeArena& arena);
Graph load_binary(const std::string& path);

/// True when the stream starts with the SPB magic; consumes nothing.
bool has_binary_magic(std::istream& in);

/// Streams a SPARBIN file in bounded memory. The payload is SoA (all u[],
/// then all v[], then all w[]), so a batch is three seeked slice reads. The
/// header is fully validated up front (magic, version, flags, n/m plausibility,
/// file length vs declared edge count -- a corrupt header fails before any
/// allocation); each batch is edge-validated as it lands; and the payload
/// checksum is accumulated incrementally, chunk-for-chunk identical to the
/// whole-file reader's, and verified when the last batch is served -- a
/// corrupted payload throws from the final next_batch() call.
class BinaryEdgeStream final : public EdgeStream {
 public:
  explicit BinaryEdgeStream(const std::string& path);
  ~BinaryEdgeStream() override;

  Vertex num_vertices() const override;
  std::size_t num_edges() const override;
  std::size_t next_batch(EdgeArena& out, std::size_t max_edges) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace spar::graph
