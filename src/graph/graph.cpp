#include "graph/graph.hpp"

#include <algorithm>
#include <tuple>

#include "support/assert.hpp"

namespace spar::graph {

Graph::Graph(Vertex num_vertices, std::vector<Edge> edges)
    : n_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    SPAR_CHECK(e.u < n_ && e.v < n_, "Graph: edge endpoint out of range");
    SPAR_CHECK(e.u != e.v, "Graph: self-loop not allowed");
    SPAR_CHECK(e.w > 0.0, "Graph: edge weight must be positive");
  }
}

EdgeId Graph::add_edge(Vertex u, Vertex v, double w) {
  SPAR_CHECK(u < n_ && v < n_, "add_edge: endpoint out of range");
  SPAR_CHECK(u != v, "add_edge: self-loop not allowed");
  SPAR_CHECK(w > 0.0, "add_edge: weight must be positive");
  edges_.push_back({u, v, w});
  return edges_.size() - 1;
}

double Graph::total_weight() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.w;
  return sum;
}

Graph Graph::coalesced() const {
  std::vector<Edge> sorted(edges_.begin(), edges_.end());
  for (Edge& e : sorted)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v) < std::tie(b.u, b.v);
  });
  Graph out(n_);
  out.reserve(sorted.size());
  for (std::size_t i = 0; i < sorted.size();) {
    double w = 0.0;
    std::size_t j = i;
    while (j < sorted.size() && sorted[j].u == sorted[i].u && sorted[j].v == sorted[i].v) {
      w += sorted[j].w;
      ++j;
    }
    out.add_edge(sorted[i].u, sorted[i].v, w);
    i = j;
  }
  return out;
}

Graph Graph::filtered(const std::vector<bool>& keep) const {
  SPAR_CHECK(keep.size() == edges_.size(), "filtered: mask size mismatch");
  Graph out(n_);
  for (EdgeId id = 0; id < edges_.size(); ++id)
    if (keep[id]) out.edges_.push_back(edges_[id]);
  return out;
}

Graph Graph::scaled(double a) const {
  SPAR_CHECK(a > 0.0, "scaled: factor must be positive");
  Graph out = *this;
  for (Edge& e : out.edges_) e.w *= a;
  return out;
}

Graph operator+(const Graph& a, const Graph& b) {
  SPAR_CHECK(a.n_ == b.n_, "operator+: vertex count mismatch");
  Graph out = a;
  out.edges_.insert(out.edges_.end(), b.edges_.begin(), b.edges_.end());
  return out;
}

bool Graph::same_edges(const Graph& other) const {
  if (n_ != other.n_ || edges_.size() != other.edges_.size()) return false;
  auto norm = [](std::vector<Edge> es) {
    for (Edge& e : es)
      if (e.u > e.v) std::swap(e.u, e.v);
    std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) {
      return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
    });
    return es;
  };
  return norm(edges_) == norm(other.edges_);
}

}  // namespace spar::graph
