#include "graph/graph.hpp"

#include <algorithm>
#include <tuple>

#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::graph {

Graph::Graph(Vertex num_vertices, std::vector<Edge> edges)
    : n_(num_vertices), edges_(std::move(edges)) {
  for (const Edge& e : edges_) {
    SPAR_CHECK(e.u < n_ && e.v < n_, "Graph: edge endpoint out of range");
    SPAR_CHECK(e.u != e.v, "Graph: self-loop not allowed");
    SPAR_CHECK(e.w > 0.0, "Graph: edge weight must be positive");
  }
}

EdgeId Graph::add_edge(Vertex u, Vertex v, double w) {
  SPAR_CHECK(u < n_ && v < n_, "add_edge: endpoint out of range");
  SPAR_CHECK(u != v, "add_edge: self-loop not allowed");
  SPAR_CHECK(w > 0.0, "add_edge: weight must be positive");
  edges_.push_back({u, v, w});
  return edges_.size() - 1;
}

double Graph::total_weight() const {
  double sum = 0.0;
  for (const Edge& e : edges_) sum += e.w;
  return sum;
}

template <typename Keep>
Graph Graph::filtered_impl(Keep&& keep) const {
  namespace par = support::par;
  Graph out(n_);
  out.edges_.resize(edges_.size());
  const std::size_t kept = par::parallel_compact(
      0, static_cast<std::int64_t>(edges_.size()),
      [&](std::int64_t id) { return keep(static_cast<EdgeId>(id)); },
      [&](std::int64_t id, std::size_t pos) {
        out.edges_[pos] = edges_[static_cast<EdgeId>(id)];
      });
  out.edges_.resize(kept);
  return out;
}

Graph Graph::coalesced() const {
  namespace par = support::par;
  const std::size_t m = edges_.size();
  std::vector<Edge> sorted(edges_.begin(), edges_.end());
  for (Edge& e : sorted)
    if (e.u > e.v) std::swap(e.u, e.v);
  std::sort(sorted.begin(), sorted.end(), [](const Edge& a, const Edge& b) {
    return std::tie(a.u, a.v) < std::tie(b.u, b.v);
  });

  // Compact the run heads, then sum each run's weights in index order (the
  // order the old serial merge used, so sums are bit-identical).
  std::vector<std::size_t> starts(m);
  const std::size_t runs = par::parallel_compact(
      0, static_cast<std::int64_t>(m),
      [&](std::int64_t i) {
        return i == 0 || std::tie(sorted[i].u, sorted[i].v) !=
                             std::tie(sorted[i - 1].u, sorted[i - 1].v);
      },
      [&](std::int64_t i, std::size_t pos) {
        starts[pos] = static_cast<std::size_t>(i);
      });
  starts.resize(runs);

  Graph out(n_);
  out.edges_.resize(runs);
  par::parallel_for(0, static_cast<std::int64_t>(runs), [&](std::int64_t r) {
    const std::size_t first = starts[static_cast<std::size_t>(r)];
    const std::size_t last =
        static_cast<std::size_t>(r) + 1 < runs ? starts[static_cast<std::size_t>(r) + 1] : m;
    double w = 0.0;
    for (std::size_t j = first; j < last; ++j) w += sorted[j].w;
    out.edges_[static_cast<std::size_t>(r)] = {sorted[first].u, sorted[first].v, w};
  });
  return out;
}

Graph Graph::filtered(const std::vector<bool>& keep) const {
  SPAR_CHECK(keep.size() == edges_.size(), "filtered: mask size mismatch");
  return filtered_impl([&](EdgeId id) -> bool { return keep[id]; });
}

Graph Graph::filtered_out(const std::vector<bool>& drop) const {
  SPAR_CHECK(drop.size() == edges_.size(), "filtered_out: mask size mismatch");
  return filtered_impl([&](EdgeId id) -> bool { return !drop[id]; });
}

Graph Graph::scaled(double a) const {
  SPAR_CHECK(a > 0.0, "scaled: factor must be positive");
  Graph out = *this;
  for (Edge& e : out.edges_) e.w *= a;
  return out;
}

Graph operator+(const Graph& a, const Graph& b) {
  SPAR_CHECK(a.n_ == b.n_, "operator+: vertex count mismatch");
  Graph out = a;
  out.edges_.insert(out.edges_.end(), b.edges_.begin(), b.edges_.end());
  return out;
}

bool Graph::same_edges(const Graph& other) const {
  if (n_ != other.n_ || edges_.size() != other.edges_.size()) return false;
  auto norm = [](std::vector<Edge> es) {
    for (Edge& e : es)
      if (e.u > e.v) std::swap(e.u, e.v);
    std::sort(es.begin(), es.end(), [](const Edge& a, const Edge& b) {
      return std::tie(a.u, a.v, a.w) < std::tie(b.u, b.v, b.w);
    });
    return es;
  };
  return norm(edges_) == norm(other.edges_);
}

}  // namespace spar::graph
