// Minimum spanning tree / forest in the resistance metric (length = 1/w,
// i.e. maximum-weight spanning tree in conductances). Used by the
// low-stretch-tree extension (Remark 2) and by tests as a stretch baseline.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace spar::graph {

/// Edge ids of a minimum-resistance spanning forest (Kruskal).
std::vector<EdgeId> mst_edge_ids(const Graph& g);

/// The forest itself as a Graph.
Graph mst(const Graph& g);

}  // namespace spar::graph
