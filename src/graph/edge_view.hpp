// Structure-of-arrays edge storage for the sparsification round pipeline.
//
// The round loop of PARALLELSPARSIFY repeatedly shrinks one edge universe:
// every round keeps the bundle edges, keeps a coin-flip subset of the rest at
// weight w/p, and drops everything else. Materializing each intermediate as a
// fresh `Graph` (an AoS edge list rebuilt through a serial add_edge loop) made
// the round loop allocation- and copy-bound. EdgeArena stores the edges once
// as parallel arrays u[] / v[] / w[] and mutates them in place:
//
//  * weights reweight in place (w *= 1/p) as edges survive a round,
//  * surviving edges are compacted with a deterministic prefix-sum scatter
//    (support::par::parallel_compact) into double-buffered slabs, preserving
//    index order -- the edge id an algorithm sees is exactly the rank the old
//    serial append loop would have assigned,
//  * `Graph` objects exist only at API boundaries (EdgeArena(Graph&) in,
//    to_graph() out); nothing inside a round constructs one.
//
// EdgeView is the non-owning index-slab view consumers read: raw SoA pointers
// plus [begin, end) bounds into the arena's active slab. CSRGraph::rebuild
// consumes it, as does anything that only iterates edges.
#pragma once

#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spar::graph {

/// Non-owning SoA view of a contiguous slab of edges. Edge i of the view has
/// endpoints u[i], v[i] and weight w[i]; ids are slab-relative.
struct EdgeView {
  Vertex num_vertices = 0;
  std::size_t size = 0;
  const Vertex* u = nullptr;
  const Vertex* v = nullptr;
  const double* w = nullptr;

  /// Sub-slab [first, last) of this view.
  EdgeView slab(std::size_t first, std::size_t last) const {
    return {num_vertices, last - first, u + first, v + first, w + first};
  }
};

/// Owning SoA edge storage with in-place compaction. The "active slab" is the
/// prefix [0, size()); compact() shrinks it without reallocating (the arena
/// double-buffers internally and swaps).
class EdgeArena {
 public:
  EdgeArena() = default;
  explicit EdgeArena(Vertex num_vertices) : n_(num_vertices) {}
  explicit EdgeArena(const Graph& g) { assign(g); }

  /// Refill from a Graph, reusing existing capacity (boundary conversion in).
  void assign(const Graph& g);

  /// I/O fill path: size the active slab to `m` edges over `n` vertices.
  /// Array contents are unspecified until written through mutable_u() /
  /// mutable_v() / weights(); call validate() once the slab is populated.
  /// This is how the binary loader and the chunked text parser land edges
  /// without a per-edge add_edge loop.
  void resize(Vertex n, std::size_t m);

  /// Concatenate `view` onto the active slab (the merge step of the
  /// merge-and-reduce streaming tower). An empty arena adopts the view's
  /// vertex count; otherwise the counts must match. Appended edges keep the
  /// view's index order, so the result is the edge list a serial
  /// append-in-arrival-order loop would build.
  void append(const EdgeView& view);

  /// Release all buffer memory (capacity drops to zero). The streaming tower
  /// calls this on levels it has merged away so peak residency is real.
  void release();

  std::span<Vertex> mutable_u() { return {u_.data(), size_}; }
  std::span<Vertex> mutable_v() { return {v_.data(), size_}; }

  /// Check every edge of the active slab (endpoint < n, no self-loop, finite
  /// weight > 0); throws spar::Error naming the first offending index. The
  /// scan is a deterministic parallel reduction.
  void validate() const;

  /// Active slab as a Graph (boundary conversion out). Edge order is the
  /// arena's index order, so round-trip through Graph preserves edge ids.
  Graph to_graph() const;

  Vertex num_vertices() const { return n_; }
  std::size_t size() const { return size_; }
  EdgeView view() const { return {n_, size_, u_.data(), v_.data(), w_.data()}; }

  Vertex u(std::size_t i) const { return u_[i]; }
  Vertex v(std::size_t i) const { return v_[i]; }
  double weight(std::size_t i) const { return w_[i]; }

  /// Mutable weights of the active slab (in-place reweighting).
  std::span<double> weights() { return {w_.data(), size_}; }

  /// Stable in-place compaction of the active slab: edge i survives iff
  /// keep(i), landing with weight weight_of(i) (reweight-on-compact; return
  /// w[i] to keep it unchanged). Survivors retain relative order, so the new
  /// id of a survivor is its rank among survivors -- identical to what a
  /// serial filter-append loop assigns. Deterministic for every thread count
  /// (parallel_compact). Returns the new size.
  template <typename Keep, typename WeightOf>
  std::size_t compact(Keep&& keep, WeightOf&& weight_of);

  template <typename Keep>
  std::size_t compact(Keep&& keep) {
    return compact(static_cast<Keep&&>(keep),
                   [this](std::size_t i) { return w_[i]; });
  }

  /// Total weight of the active slab (deterministic chunked sum).
  double total_weight() const;

 private:
  std::size_t compact_commit(std::size_t new_size);

  Vertex n_ = 0;
  std::size_t size_ = 0;
  std::vector<Vertex> u_, v_;
  std::vector<double> w_;
  // Double buffers for compaction scatter; swapped with the live arrays.
  std::vector<Vertex> next_u_, next_v_;
  std::vector<double> next_w_;
};

}  // namespace spar::graph

#include "support/parallel.hpp"

namespace spar::graph {

template <typename Keep, typename WeightOf>
std::size_t EdgeArena::compact(Keep&& keep, WeightOf&& weight_of) {
  next_u_.resize(size_);
  next_v_.resize(size_);
  next_w_.resize(size_);
  const std::size_t kept = support::par::parallel_compact(
      0, static_cast<std::int64_t>(size_),
      [&](std::int64_t i) { return keep(static_cast<std::size_t>(i)); },
      [&](std::int64_t i, std::size_t pos) {
        const auto id = static_cast<std::size_t>(i);
        next_u_[pos] = u_[id];
        next_v_[pos] = v_[id];
        next_w_[pos] = weight_of(id);
      });
  return compact_commit(kept);
}

}  // namespace spar::graph
