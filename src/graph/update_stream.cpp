#include "graph/update_stream.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <numeric>
#include <ostream>
#include <string_view>
#include <utility>

#include "support/assert.hpp"
#include "support/framing.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::graph {

namespace framing = support::framing;

namespace {

struct UpdateHeader {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t n;
  std::uint64_t c;
  std::uint64_t checksum;
};
static_assert(sizeof(UpdateHeader) == 40,
              "SPARDYN header layout is part of the format");

constexpr std::size_t kBytesPerUpdate =
    2 * sizeof(Vertex) + sizeof(double) + sizeof(std::uint8_t);

// Largest c the reader will attempt to allocate (17 bytes/update); anything
// bigger is a corrupt or hostile header, not an update stream.
constexpr std::uint64_t kMaxUpdates = std::uint64_t{1} << 40;

std::uint64_t payload_checksum(const UpdateBatch& b) {
  std::uint64_t h = support::mix64(b.num_vertices, b.size());
  h = framing::checksum_bytes(b.u.data(), b.size() * sizeof(Vertex), h);
  h = framing::checksum_bytes(b.v.data(), b.size() * sizeof(Vertex), h);
  h = framing::checksum_bytes(b.w.data(), b.size() * sizeof(double), h);
  h = framing::checksum_bytes(b.op.data(), b.size() * sizeof(std::uint8_t), h);
  return h;
}

void write_raw(std::ostream& out, const void* data, std::size_t len) {
  if (len == 0) return;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(out.good(), "write_updates: stream write failed");
}

void read_raw(std::istream& in, void* data, std::size_t len, const char* what) {
  if (len == 0) return;
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(in.gcount() == static_cast<std::streamsize>(len) && !in.bad(),
             std::string("read_updates: truncated ") + what);
}

/// Read + fully validate a SPARDYN header; shared by every binary reader so
/// hostile headers fail identically on all paths.
UpdateHeader read_checked_header(std::istream& in) {
  UpdateHeader h = {};
  read_raw(in, &h, sizeof(h), "header");
  SPAR_CHECK(std::memcmp(h.magic, kUpdateMagic, sizeof(h.magic)) == 0,
             "read_updates: bad magic (not a SPARDYN file)");
  SPAR_CHECK(h.version == kUpdateVersion,
             "read_updates: unsupported version " + std::to_string(h.version) +
                 " (reader supports " + std::to_string(kUpdateVersion) + ")");
  SPAR_CHECK(h.flags == 0, "read_updates: nonzero reserved flags");
  SPAR_CHECK(h.n <= std::numeric_limits<Vertex>::max(),
             "read_updates: vertex count exceeds 32-bit vertex ids");
  SPAR_CHECK(h.c <= kMaxUpdates,
             "read_updates: implausible update count (corrupt header)");
  return h;
}

/// Before allocating 17 bytes per claimed update, bind the claim to the
/// stream length where seekable: a corrupt header must fail with a message,
/// not an allocation the size of the address space.
void check_payload_length(std::istream& in, std::istream::pos_type pos,
                          std::uint64_t payload_bytes) {
  if (pos == std::istream::pos_type(-1)) return;
  in.seekg(0, std::ios::end);
  const auto stream_end = in.tellg();
  in.seekg(pos);
  if (stream_end != std::istream::pos_type(-1))
    SPAR_CHECK(static_cast<std::uint64_t>(stream_end - pos) == payload_bytes,
               "read_updates: stream length does not match the header's update count");
}

}  // namespace

void UpdateBatch::append(const UpdateBatch& other, std::size_t first,
                         std::size_t last) {
  SPAR_ASSERT(first <= last && last <= other.size());
  if (size() == 0 && num_vertices == 0) num_vertices = other.num_vertices;
  SPAR_CHECK(num_vertices == other.num_vertices,
             "UpdateBatch::append: vertex count mismatch");
  u.insert(u.end(), other.u.begin() + first, other.u.begin() + last);
  v.insert(v.end(), other.v.begin() + first, other.v.begin() + last);
  w.insert(w.end(), other.w.begin() + first, other.w.begin() + last);
  op.insert(op.end(), other.op.begin() + first, other.op.begin() + last);
}

void UpdateBatch::validate() const {
  const auto bad = [&](std::size_t i) {
    if (u[i] >= num_vertices || v[i] >= num_vertices || u[i] == v[i]) return true;
    if (op[i] == static_cast<std::uint8_t>(UpdateOp::kInsert))
      return !(w[i] > 0.0) || !std::isfinite(w[i]);
    if (op[i] == static_cast<std::uint8_t>(UpdateOp::kDelete)) return w[i] != 0.0;
    return true;  // unknown opcode
  };
  const std::int64_t first_bad = support::par::parallel_reduce(
      0, static_cast<std::int64_t>(size()), std::int64_t{-1},
      [&](std::int64_t cb, std::int64_t ce) -> std::int64_t {
        for (std::int64_t i = cb; i < ce; ++i)
          if (bad(static_cast<std::size_t>(i))) return i;
        return -1;
      },
      [](std::int64_t a, std::int64_t b) { return a >= 0 ? a : b; });
  if (first_bad < 0) return;
  const auto i = static_cast<std::size_t>(first_bad);
  std::string what = "UpdateBatch::validate: update " + std::to_string(i);
  if (u[i] >= num_vertices || v[i] >= num_vertices)
    what += ": endpoint out of range (n = " + std::to_string(num_vertices) + ")";
  else if (u[i] == v[i])
    what += ": self-loop";
  else if (op[i] > 1)
    what += ": unknown opcode " + std::to_string(op[i]);
  else if (op[i] == static_cast<std::uint8_t>(UpdateOp::kDelete))
    what += ": delete must carry weight 0";
  else
    what += ": insert weight must be positive and finite";
  throw spar::Error(what);
}

// ---------------------------------------------------------------------------
// In-memory stream

std::size_t MemoryUpdateStream::next_batch(UpdateBatch& out,
                                           std::size_t max_updates) {
  SPAR_CHECK(max_updates > 0, "update_stream: max_updates must be positive");
  const std::size_t k = std::min(max_updates, updates_->size() - cursor_);
  out.clear();
  out.num_vertices = updates_->num_vertices;
  if (k == 0) return 0;
  out.append(*updates_, cursor_, cursor_ + k);
  cursor_ += k;
  out.validate();
  return k;
}

// ---------------------------------------------------------------------------
// Text format

void write_updates(std::ostream& out, const UpdateBatch& updates) {
  out << updates.num_vertices << ' ' << updates.size() << '\n';
  char buf[64];
  for (std::size_t i = 0; i < updates.size(); ++i) {
    if (updates.op[i] == static_cast<std::uint8_t>(UpdateOp::kInsert)) {
      const int len = std::snprintf(buf, sizeof(buf), "+ %u %u %.17g\n",
                                    updates.u[i], updates.v[i], updates.w[i]);
      out.write(buf, len);
    } else {
      const int len =
          std::snprintf(buf, sizeof(buf), "- %u %u\n", updates.u[i], updates.v[i]);
      out.write(buf, len);
    }
  }
  SPAR_CHECK(out.good(), "write_updates: stream write failed");
}

struct TextUpdateStream::Impl {
  std::ifstream in;
  std::string path;
  Vertex n = 0;
  std::size_t c = 0;
  std::size_t served = 0;
  std::size_t line = 0;  ///< 1-based line number of the last line read
  std::string buf;

  [[noreturn]] void fail(const std::string& what) const {
    throw spar::Error("read_updates: " + path + ":" + std::to_string(line) +
                      ": " + what);
  }

  /// Next non-comment, non-blank line; false on clean EOF.
  bool next_line() {
    while (std::getline(in, buf)) {
      ++line;
      std::size_t at = buf.find_first_not_of(" \t\r");
      if (at == std::string::npos || buf[at] == '#') continue;
      return true;
    }
    SPAR_CHECK(!in.bad(), "read_updates: read failed for " + path);
    return false;
  }

  /// from_chars wrapper with the stream's line diagnostics.
  template <typename T>
  const char* parse_token(const char* p, const char* end, T& out,
                          const char* what) const {
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    const auto [next, ec] = std::from_chars(p, end, out);
    if (ec != std::errc() || next == p) fail(std::string("malformed ") + what);
    return next;
  }
};

TextUpdateStream::TextUpdateStream(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  Impl& s = *impl_;
  s.path = path;
  s.in.open(path);
  SPAR_CHECK(s.in.good(), "read_updates: cannot open " + path);
  SPAR_CHECK(s.next_line(), "read_updates: " + path + ": missing header line");
  const char* p = s.buf.data();
  const char* end = p + s.buf.size();
  std::uint64_t n = 0, c = 0;
  p = s.parse_token(p, end, n, "vertex count");
  p = s.parse_token(p, end, c, "update count");
  if (n > std::numeric_limits<Vertex>::max())
    s.fail("vertex count exceeds 32-bit vertex ids");
  if (c > kMaxUpdates) s.fail("implausible update count");
  s.n = static_cast<Vertex>(n);
  s.c = static_cast<std::size_t>(c);
}

TextUpdateStream::~TextUpdateStream() = default;

Vertex TextUpdateStream::num_vertices() const { return impl_->n; }
std::size_t TextUpdateStream::num_updates() const { return impl_->c; }

std::size_t TextUpdateStream::next_batch(UpdateBatch& out, std::size_t max_updates) {
  SPAR_CHECK(max_updates > 0, "update_stream: max_updates must be positive");
  Impl& s = *impl_;
  out.clear();
  out.num_vertices = s.n;
  const std::size_t k = std::min(max_updates, s.c - s.served);
  for (std::size_t i = 0; i < k; ++i) {
    if (!s.next_line())
      s.fail("truncated body: " + std::to_string(s.c) + " updates declared, " +
             std::to_string(s.served) + " present");
    const char* p = s.buf.data();
    const char* end = p + s.buf.size();
    while (p < end && (*p == ' ' || *p == '\t')) ++p;
    if (p == end || (*p != '+' && *p != '-'))
      s.fail("update line must start with '+' or '-'");
    const bool is_delete = *p == '-';
    ++p;
    Vertex a = 0, b = 0;
    double weight = 0.0;
    p = s.parse_token(p, end, a, "endpoint");
    p = s.parse_token(p, end, b, "endpoint");
    if (!is_delete) p = s.parse_token(p, end, weight, "weight");
    while (p < end && (*p == ' ' || *p == '\t' || *p == '\r')) ++p;
    if (p != end) s.fail("trailing characters after update");
    if (is_delete)
      out.push_delete(a, b);
    else
      out.push_insert(a, b, weight);
    ++s.served;
  }
  if (s.served == s.c && s.next_line()) s.fail("trailing updates beyond header count");
  if (k > 0) out.validate();
  return k;
}

// ---------------------------------------------------------------------------
// SPARDYN binary format

std::size_t update_file_size(std::size_t c) {
  return sizeof(UpdateHeader) + c * kBytesPerUpdate;
}

namespace {

void write_binary_updates(std::ostream& out, const UpdateBatch& b) {
  b.validate();
  UpdateHeader h = {};
  std::memcpy(h.magic, kUpdateMagic, sizeof(h.magic));
  h.version = kUpdateVersion;
  h.flags = 0;
  h.n = b.num_vertices;
  h.c = b.size();
  h.checksum = payload_checksum(b);
  write_raw(out, &h, sizeof(h));
  write_raw(out, b.u.data(), b.size() * sizeof(Vertex));
  write_raw(out, b.v.data(), b.size() * sizeof(Vertex));
  write_raw(out, b.w.data(), b.size() * sizeof(double));
  write_raw(out, b.op.data(), b.size() * sizeof(std::uint8_t));
}

}  // namespace

void save_updates(const std::string& path, const UpdateBatch& updates) {
  const bool text = path.size() >= 4 && path.compare(path.size() - 4, 4, ".txt") == 0;
  if (text) {
    updates.validate();
    std::ofstream out(path, std::ios::trunc);
    SPAR_CHECK(out.good(), "save_updates: cannot open " + path);
    write_updates(out, updates);
  } else {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    SPAR_CHECK(out.good(), "save_updates: cannot open " + path);
    write_binary_updates(out, updates);
  }
}

struct BinaryUpdateStream::Impl {
  std::ifstream in;
  UpdateHeader h = {};
  std::size_t cursor = 0;
  std::uint64_t u_off = 0, v_off = 0, w_off = 0, op_off = 0;
  framing::ChunkedHasher hash_u, hash_v, hash_w, hash_op;
  bool verified = false;

  std::uint64_t fold_checksum() {
    std::uint64_t x = support::mix64(h.n, h.c);
    x = hash_u.fold(x);
    x = hash_v.fold(x);
    x = hash_w.fold(x);
    x = hash_op.fold(x);
    return x;
  }
};

BinaryUpdateStream::BinaryUpdateStream(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  Impl& s = *impl_;
  s.in.open(path, std::ios::binary);
  SPAR_CHECK(s.in.good(), "read_updates: cannot open " + path);
  s.h = read_checked_header(s.in);
  check_payload_length(s.in, s.in.tellg(), s.h.c * kBytesPerUpdate);
  s.u_off = sizeof(UpdateHeader);
  s.v_off = s.u_off + s.h.c * sizeof(Vertex);
  s.w_off = s.v_off + s.h.c * sizeof(Vertex);
  s.op_off = s.w_off + s.h.c * sizeof(double);
  s.hash_u.init(s.h.c * sizeof(Vertex));
  s.hash_v.init(s.h.c * sizeof(Vertex));
  s.hash_w.init(s.h.c * sizeof(double));
  s.hash_op.init(s.h.c * sizeof(std::uint8_t));
  if (s.h.c == 0) {
    SPAR_CHECK(s.fold_checksum() == s.h.checksum,
               "read_updates: checksum mismatch (corrupt payload)");
    s.verified = true;
  }
}

BinaryUpdateStream::~BinaryUpdateStream() = default;

Vertex BinaryUpdateStream::num_vertices() const {
  return static_cast<Vertex>(impl_->h.n);
}
std::size_t BinaryUpdateStream::num_updates() const {
  return static_cast<std::size_t>(impl_->h.c);
}

std::size_t BinaryUpdateStream::next_batch(UpdateBatch& out,
                                           std::size_t max_updates) {
  SPAR_CHECK(max_updates > 0, "update_stream: max_updates must be positive");
  Impl& s = *impl_;
  out.clear();
  out.num_vertices = static_cast<Vertex>(s.h.n);
  const std::size_t k =
      std::min(max_updates, static_cast<std::size_t>(s.h.c) - s.cursor);
  if (k == 0) return 0;

  out.u.resize(k);
  out.v.resize(k);
  out.w.resize(k);
  out.op.resize(k);
  const auto read_slice = [&](std::uint64_t base, void* dst, std::size_t elem_bytes,
                              framing::ChunkedHasher& hasher, const char* what) {
    s.in.seekg(static_cast<std::streamoff>(base + s.cursor * elem_bytes));
    read_raw(s.in, dst, k * elem_bytes, what);
    hasher.feed(dst, k * elem_bytes);
  };
  read_slice(s.u_off, out.u.data(), sizeof(Vertex), s.hash_u, "u[] payload");
  read_slice(s.v_off, out.v.data(), sizeof(Vertex), s.hash_v, "v[] payload");
  read_slice(s.w_off, out.w.data(), sizeof(double), s.hash_w, "w[] payload");
  read_slice(s.op_off, out.op.data(), sizeof(std::uint8_t), s.hash_op, "op[] payload");
  s.cursor += k;

  if (s.cursor == static_cast<std::size_t>(s.h.c) && !s.verified) {
    SPAR_CHECK(s.fold_checksum() == s.h.checksum,
               "read_updates: checksum mismatch (corrupt payload)");
    s.verified = true;
  }
  out.validate();
  return k;
}

bool has_update_magic(std::istream& in) {
  char buf[sizeof(kUpdateMagic)] = {};
  const auto pos = in.tellg();
  in.read(buf, sizeof(buf));
  const bool ok =
      in.gcount() == sizeof(buf) && std::memcmp(buf, kUpdateMagic, sizeof(buf)) == 0;
  in.clear();
  in.seekg(pos);
  return ok;
}

std::unique_ptr<UpdateStream> open_update_stream(const std::string& path) {
  std::ifstream probe(path, std::ios::binary);
  SPAR_CHECK(probe.good(), "read_updates: cannot open " + path);
  const bool binary = has_update_magic(probe);
  probe.close();
  if (binary) return std::make_unique<BinaryUpdateStream>(path);
  return std::make_unique<TextUpdateStream>(path);
}

UpdateBatch load_updates(const std::string& path) {
  const auto stream = open_update_stream(path);
  UpdateBatch all, batch;
  all.num_vertices = stream->num_vertices();
  while (stream->next_batch(batch, std::size_t{1} << 16) > 0)
    all.append(batch, 0, batch.size());
  return all;
}

// ---------------------------------------------------------------------------
// Synthetic workloads

UpdateBatch synthesize_updates(const Graph& g, double delete_fraction,
                               std::uint64_t seed) {
  SPAR_CHECK(delete_fraction >= 0.0 && delete_fraction <= 1.0,
             "synthesize_updates: delete_fraction must be in [0, 1]");
  const Graph simple = g.coalesced();
  const std::size_t m = simple.num_edges();
  support::Rng rng(support::mix64(seed, 0xd74a1cULL));

  // Insert order: a seeded Fisher-Yates shuffle of the edge ids.
  std::vector<std::uint32_t> order(m);
  std::iota(order.begin(), order.end(), 0);
  for (std::size_t i = m; i > 1; --i)
    std::swap(order[i - 1], order[rng.below(i)]);

  // Delete targets: the first D ids of a second shuffle.
  const auto deletes = static_cast<std::size_t>(
      std::llround(delete_fraction * static_cast<double>(m)));
  std::vector<std::uint32_t> victims(m);
  std::iota(victims.begin(), victims.end(), 0);
  for (std::size_t i = m; i > 1; --i)
    std::swap(victims[i - 1], victims[rng.below(i)]);
  std::vector<std::uint8_t> is_victim(m, 0);
  for (std::size_t i = 0; i < deletes; ++i) is_victim[victims[i]] = 1;

  // Interleave: an insert at slot i happens at time i; a victim's delete at
  // a uniform time in (insert slot, m). Sorting by (time, sequence) yields a
  // well-mixed, deterministic schedule with every delete after its insert.
  struct Op {
    double time;
    std::uint64_t sequence;
    std::uint32_t edge;
    bool is_delete;
  };
  std::vector<Op> schedule;
  schedule.reserve(m + deletes);
  std::vector<std::size_t> slot_of(m, 0);
  for (std::size_t i = 0; i < m; ++i) slot_of[order[i]] = i;
  std::uint64_t sequence = 0;
  for (std::size_t i = 0; i < m; ++i)
    schedule.push_back({static_cast<double>(i), sequence++, order[i], false});
  for (std::size_t e = 0; e < m; ++e) {
    if (!is_victim[e]) continue;
    const double insert_time = static_cast<double>(slot_of[e]);
    schedule.push_back({rng.uniform(insert_time + 0.5, static_cast<double>(m)),
                        sequence++, static_cast<std::uint32_t>(e), true});
  }
  std::sort(schedule.begin(), schedule.end(), [](const Op& a, const Op& b) {
    return a.time != b.time ? a.time < b.time : a.sequence < b.sequence;
  });

  UpdateBatch out;
  out.num_vertices = simple.num_vertices();
  for (const Op& op : schedule) {
    const Edge& e = simple.edge(op.edge);
    if (op.is_delete)
      out.push_delete(e.u, e.v);
    else
      out.push_insert(e.u, e.v, e.w);
  }
  return out;
}

}  // namespace spar::graph
