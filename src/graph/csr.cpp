#include "graph/csr.hpp"

#include <algorithm>
#include <atomic>

#include "support/parallel.hpp"

namespace spar::graph {

namespace par = support::par;

CSRGraph::CSRGraph(const Graph& g) {
  const Vertex n = g.num_vertices();
  const auto edges = g.edges();
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);

  // Degree count. Edge lists are typically large; parallelize with atomics on
  // the (cold) offsets array, then prefix-sum sequentially (n is small next to m).
  std::vector<std::atomic<std::size_t>> deg(n);
  for (auto& d : deg) d.store(0, std::memory_order_relaxed);
  par::parallel_for(0, static_cast<std::int64_t>(edges.size()), [&](std::int64_t i) {
    deg[edges[i].u].fetch_add(1, std::memory_order_relaxed);
    deg[edges[i].v].fetch_add(1, std::memory_order_relaxed);
  });
  for (Vertex v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + deg[v].load();

  arcs_.resize(offsets_[n]);
  std::vector<std::atomic<std::size_t>> cursor(n);
  for (Vertex v = 0; v < n; ++v) cursor[v].store(offsets_[v], std::memory_order_relaxed);
  par::parallel_for(0, static_cast<std::int64_t>(edges.size()), [&](std::int64_t i) {
    const Edge& e = edges[i];
    const auto id = static_cast<EdgeId>(i);
    arcs_[cursor[e.u].fetch_add(1, std::memory_order_relaxed)] = {e.v, e.w, id};
    arcs_[cursor[e.v].fetch_add(1, std::memory_order_relaxed)] = {e.u, e.w, id};
  });

  // Sort each adjacency list by target for deterministic iteration order
  // (parallel insertion above is thread-order dependent).
  par::parallel_chunks(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t vb, std::int64_t ve, std::int64_t /*chunk*/, int /*worker*/) {
        for (std::int64_t v = vb; v < ve; ++v) {
          std::sort(arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
                    arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]),
                    [](const Arc& a, const Arc& b) {
                      return a.to != b.to ? a.to < b.to : a.id < b.id;
                    });
        }
      },
      {.grain = 64});
}

std::size_t CSRGraph::max_degree() const {
  std::size_t best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace spar::graph
