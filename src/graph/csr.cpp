#include "graph/csr.hpp"

#include <algorithm>
#include <atomic>

#include "support/parallel.hpp"

namespace spar::graph {

namespace par = support::par;

namespace {
CsrBuildPath g_build_path = CsrBuildPath::kAuto;

// Atomic-scatter crossover: the parallel build must touch at least this many
// edges per effective thread before the relaxed fetch_adds pay for
// themselves. Measured on the bench_io --csr=1 sweep (BENCH_pr3.json): below
// this the serial counting sort wins at every thread count.
constexpr std::size_t kMinEdgesPerThread = std::size_t{1} << 14;
}  // namespace

void set_csr_build_path(CsrBuildPath policy) noexcept { g_build_path = policy; }

CsrBuildPath csr_build_path() noexcept { return g_build_path; }

bool csr_parallel_build_enabled(std::size_t m) noexcept {
  if (!par::openmp_enabled() || m <= 1) return false;
  switch (g_build_path) {
    case CsrBuildPath::kSerial: return false;
    case CsrBuildPath::kParallel: return true;
    case CsrBuildPath::kAuto: break;
  }
  // An OMP_NUM_THREADS above the core count is oversubscription, not
  // parallelism: gate on the smaller of the budget and the hardware.
  const int threads = std::min(par::max_threads(), par::hardware_threads());
  return threads > 1 && m >= kMinEdgesPerThread * static_cast<std::size_t>(threads);
}

template <typename EdgeAt>
void CSRGraph::rebuild_impl(Vertex n, std::size_t m, EdgeAt&& at) {
  offsets_.assign(static_cast<std::size_t>(n) + 1, 0);
  cursor_.assign(n, 0);

  // Degree count, prefix sum, scatter. The parallel path uses relaxed
  // atomic_ref increments on the reusable cursor buffer; the serial path
  // skips the atomics entirely and wins whenever there is too little work per
  // effective thread (csr_parallel_build_enabled). Either way the final
  // per-vertex sort below canonicalizes arc order, so the result is
  // bit-identical across paths and thread counts.
  const bool concurrent = csr_parallel_build_enabled(m);
  if (concurrent) {
    par::parallel_for(0, static_cast<std::int64_t>(m), [&](std::int64_t i) {
      const Edge e = at(static_cast<std::size_t>(i));
      std::atomic_ref<std::size_t>(cursor_[e.u]).fetch_add(1, std::memory_order_relaxed);
      std::atomic_ref<std::size_t>(cursor_[e.v]).fetch_add(1, std::memory_order_relaxed);
    });
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      const Edge e = at(i);
      ++cursor_[e.u];
      ++cursor_[e.v];
    }
  }
  for (Vertex v = 0; v < n; ++v) offsets_[v + 1] = offsets_[v] + cursor_[v];

  arcs_.resize(offsets_[n]);
  for (Vertex v = 0; v < n; ++v) cursor_[v] = offsets_[v];
  if (concurrent) {
    par::parallel_for(0, static_cast<std::int64_t>(m), [&](std::int64_t i) {
      const Edge e = at(static_cast<std::size_t>(i));
      const auto id = static_cast<EdgeId>(i);
      arcs_[std::atomic_ref<std::size_t>(cursor_[e.u])
                .fetch_add(1, std::memory_order_relaxed)] = {e.v, e.w, id};
      arcs_[std::atomic_ref<std::size_t>(cursor_[e.v])
                .fetch_add(1, std::memory_order_relaxed)] = {e.u, e.w, id};
    });
  } else {
    for (std::size_t i = 0; i < m; ++i) {
      const Edge e = at(i);
      const auto id = static_cast<EdgeId>(i);
      arcs_[cursor_[e.u]++] = {e.v, e.w, id};
      arcs_[cursor_[e.v]++] = {e.u, e.w, id};
    }
  }

  // Canonical per-vertex arc order (to, id): thread- and path-independent.
  par::parallel_chunks(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t vb, std::int64_t ve, std::int64_t /*chunk*/, int /*worker*/) {
        for (std::int64_t v = vb; v < ve; ++v) {
          std::sort(arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[v]),
                    arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[v + 1]),
                    [](const Arc& a, const Arc& b) {
                      return a.to != b.to ? a.to < b.to : a.id < b.id;
                    });
        }
      },
      {.grain = 64});
}

void CSRGraph::rebuild(const Graph& g) {
  const auto edges = g.edges();
  rebuild_impl(g.num_vertices(), edges.size(),
               [&](std::size_t i) { return edges[i]; });
}

void CSRGraph::rebuild(const EdgeView& view) {
  rebuild_impl(view.num_vertices, view.size, [&](std::size_t i) {
    return Edge{view.u[i], view.v[i], view.w[i]};
  });
}

std::size_t CSRGraph::max_degree() const {
  std::size_t best = 0;
  for (Vertex v = 0; v < num_vertices(); ++v) best = std::max(best, degree(v));
  return best;
}

}  // namespace spar::graph
