// Vertex-partitioned shard views of an edge list, for the sharded
// distributed runtime (src/dist).
//
// A shard owns a contiguous vertex range (VertexPartition) and, from it, two
// derived structures over one edge universe:
//
//  * ShardAdjacency -- CSR-style adjacency restricted to the shard's OWNED
//    vertices, whose arcs keep the GLOBAL edge ids and the canonical
//    (target, edge id) row order of CSRGraph. Global ids are what make the
//    sharded protocol bit-compatible with the shared-memory one: the
//    Baswana-Sen tie-break is (length, edge id) lexicographic, so slice-local
//    ids would change decisions.
//  * ShardSlice -- the shard's owned edges (owner of edge e = owner of its
//    stored first endpoint u_e) as an EdgeArena plus the global id of each
//    slice edge. Slices of all shards partition the edge universe, so
//    per-edge work (commits, coin flips, reweighting, compaction) is counted
//    exactly once across the mesh.
//
// Both rebuild in place across sparsification rounds, reusing buffers like
// CSRGraph::rebuild does.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/csr.hpp"
#include "graph/edge_view.hpp"
#include "graph/types.hpp"

namespace spar::graph {

/// Contiguous balanced partition of [0, n) into `shards` ranges; the first
/// n % shards ranges hold one extra vertex. owner() is O(1) arithmetic, so
/// every shard can route any vertex without a directory.
struct VertexPartition {
  Vertex n = 0;
  std::size_t shards = 1;

  Vertex begin(std::size_t s) const {
    const Vertex base = n / static_cast<Vertex>(shards);
    const Vertex extra = n % static_cast<Vertex>(shards);
    const auto sv = static_cast<Vertex>(s);
    return sv * base + (sv < extra ? sv : extra);
  }
  Vertex end(std::size_t s) const { return begin(s + 1); }
  Vertex owned(std::size_t s) const { return end(s) - begin(s); }

  std::size_t owner(Vertex v) const {
    const Vertex base = n / static_cast<Vertex>(shards);
    const Vertex extra = n % static_cast<Vertex>(shards);
    const Vertex split = extra * (base + 1);  // first vertex of the base-sized ranges
    if (base == 0) return v;                  // more shards than vertices
    if (v < split) return v / (base + 1);
    return extra + (v - split) / base;
  }
};

/// Adjacency of one shard's owned vertices over a full edge universe. Arc ids
/// are global edge ids; rows are sorted by (target, edge id) -- the same
/// canonical order CSRGraph produces, independent of shard count.
class ShardAdjacency {
 public:
  ShardAdjacency() = default;

  /// Re-populate from the full edge list, keeping arcs (v -> other endpoint)
  /// for every owned v. Buffers are reused across calls.
  void rebuild(const EdgeView& edges, const VertexPartition& part,
               std::size_t shard);

  /// Arcs of owned vertex `v` (global numbering).
  std::span<const Arc> neighbors(Vertex v) const {
    const Vertex l = v - first_;
    return {arcs_.data() + offsets_[l], arcs_.data() + offsets_[l + 1]};
  }

  Vertex first_vertex() const { return first_; }
  Vertex owned_vertices() const {
    return static_cast<Vertex>(offsets_.size()) - 1;
  }
  std::size_t num_arcs() const { return arcs_.size(); }

 private:
  Vertex first_ = 0;
  std::vector<std::size_t> offsets_;  // size owned + 1
  std::vector<Arc> arcs_;
  std::vector<std::size_t> cursor_;  // scatter scratch, reused
};

/// One shard's owned edges: arena storage plus each slice edge's global id.
/// Slice order is ascending global id, so compactions stay aligned with the
/// global survivor ranks.
struct ShardSlice {
  EdgeArena arena;
  std::vector<EdgeId> global_ids;

  std::size_t size() const { return global_ids.size(); }
};

/// Build shard `shard`'s slice of `edges` under `part` (owner of edge e =
/// owner of stored endpoint u_e).
ShardSlice make_shard_slice(const EdgeView& edges, const VertexPartition& part,
                            std::size_t shard);

}  // namespace spar::graph
