// Union-find with path halving and union by size. Used by MST, connectivity
// checks, and random-regular-graph simplification.
#pragma once

#include <numeric>
#include <vector>

#include "graph/types.hpp"

namespace spar::graph {

class UnionFind {
 public:
  explicit UnionFind(std::size_t n) : parent_(n), size_(n, 1) {
    std::iota(parent_.begin(), parent_.end(), std::size_t{0});
  }

  std::size_t find(std::size_t x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];  // path halving
      x = parent_[x];
    }
    return x;
  }

  /// Returns true if x and y were in different components (i.e. a merge happened).
  bool unite(std::size_t x, std::size_t y) {
    std::size_t rx = find(x);
    std::size_t ry = find(y);
    if (rx == ry) return false;
    if (size_[rx] < size_[ry]) std::swap(rx, ry);
    parent_[ry] = rx;
    size_[rx] += size_[ry];
    return true;
  }

  bool connected(std::size_t x, std::size_t y) { return find(x) == find(y); }

  std::size_t component_size(std::size_t x) { return size_[find(x)]; }

 private:
  std::vector<std::size_t> parent_;
  std::vector<std::size_t> size_;
};

}  // namespace spar::graph
