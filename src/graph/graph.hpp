// Undirected weighted multigraph on a fixed vertex set, stored as an edge
// list. This is the value type that flows through the sparsification pipeline:
// graph algebra (G1 + G2, a*G, Laplacian ordering helpers) is defined here
// exactly as in Section 2 of the paper.
//
// Parallel edges are allowed (bundle components are edge-disjoint subgraphs of
// the same graph, and sums of graphs naturally create them); coalesce() merges
// them by summing weights, which leaves the Laplacian unchanged.
#pragma once

#include <span>
#include <vector>

#include "graph/types.hpp"

namespace spar::graph {

class Graph {
 public:
  Graph() = default;
  explicit Graph(Vertex num_vertices) : n_(num_vertices) {}
  Graph(Vertex num_vertices, std::vector<Edge> edges);

  Vertex num_vertices() const { return n_; }
  std::size_t num_edges() const { return edges_.size(); }
  std::span<const Edge> edges() const { return edges_; }
  const Edge& edge(EdgeId id) const { return edges_[id]; }

  /// Appends an undirected edge {u, v} with weight w > 0. Self-loops are
  /// rejected (they contribute nothing to a Laplacian quadratic form).
  EdgeId add_edge(Vertex u, Vertex v, double w = 1.0);

  void reserve(std::size_t num_edges) { edges_.reserve(num_edges); }

  /// Sum of edge weights.
  double total_weight() const;

  /// Merge parallel edges (same endpoint pair) by summing their weights.
  /// The Laplacian is invariant under this operation. The run merge is a
  /// deterministic parallel compaction (per-run sums in index order).
  Graph coalesced() const;

  /// Graph with the subset of edges for which keep[id] is true. Edge order is
  /// preserved (stable parallel compaction).
  Graph filtered(const std::vector<bool>& keep) const;

  /// Complement filter: graph with the edges for which drop[id] is false.
  /// Same cost as filtered(), without materializing an inverted mask.
  Graph filtered_out(const std::vector<bool>& drop) const;

  /// Graph with every weight multiplied by a > 0 (paper: aG).
  Graph scaled(double a) const;

  /// Disjoint-union of edge lists over the same vertex set (paper: G1 + G2).
  friend Graph operator+(const Graph& a, const Graph& b);

  /// Sum of squared differences free equality: same n, same edge multiset up
  /// to order. Intended for tests.
  bool same_edges(const Graph& other) const;

 private:
  /// Stable parallel-compaction core behind filtered()/filtered_out().
  template <typename Keep>
  Graph filtered_impl(Keep&& keep) const;

  Vertex n_ = 0;
  std::vector<Edge> edges_;
};

}  // namespace spar::graph
