#include "graph/mst.hpp"

#include <algorithm>
#include <numeric>

#include "graph/union_find.hpp"

namespace spar::graph {

std::vector<EdgeId> mst_edge_ids(const Graph& g) {
  const auto edges = g.edges();
  std::vector<EdgeId> order(edges.size());
  std::iota(order.begin(), order.end(), EdgeId{0});
  // Minimum resistance == maximum conductance.
  std::sort(order.begin(), order.end(), [&](EdgeId a, EdgeId b) {
    return edges[a].w > edges[b].w;
  });
  UnionFind uf(g.num_vertices());
  std::vector<EdgeId> picked;
  picked.reserve(g.num_vertices());
  for (EdgeId id : order) {
    if (uf.unite(edges[id].u, edges[id].v)) picked.push_back(id);
  }
  return picked;
}

Graph mst(const Graph& g) {
  std::vector<bool> keep(g.num_edges(), false);
  for (EdgeId id : mst_edge_ids(g)) keep[id] = true;
  return g.filtered(keep);
}

}  // namespace spar::graph
