// Mixed insert/delete edge-update streams: the ingest side of fully dynamic
// graph maintenance (sparsify/dynamic.hpp).
//
// An update is (op, u, v, w) with op = insert | delete. The dynamic layer
// runs a simple-weighted-graph discipline: inserting an edge that is already
// live, or deleting one that is not, is a diagnosed error -- the linear-
// sketch literature's turnstile contract (a delete must cancel exactly one
// prior insert), which is what makes per-batch cancellation exact.
//
// Two serialized forms, mirroring the static graph formats:
//
//  * Text ("dynamic edge list"):
//      # optional comments, also between body lines
//      <num_vertices> <num_updates>
//      + <u> <v> <w>       insert (0-based endpoints, w > 0 finite)
//      - <u> <v>           delete
//
//  * SPARDYN binary, the SoA mirror of UpdateBatch (all integers
//    little-endian, weights IEEE-754 binary64):
//      offset  size  field
//      0       8     magic  "SPARDYN\0"
//      8       4     version (currently 1)
//      12      4     flags   (reserved, must be 0)
//      16      8     n       number of vertices
//      24      8     c       number of updates
//      32      8     checksum over the payload (chunked FNV-1a, seeded with
//                    mix64(n, c); same discipline as SPARBIN/support::framing)
//      40      4*c   u[]     endpoints (uint32)
//      ..      4*c   v[]
//      ..      8*c   w[]     weights (inserts > 0 finite; deletes exactly 0)
//      ..      1*c   op[]    0 = insert, 1 = delete
//
// Readers validate everything before believing it: header magic/version/
// flags/counts against the file length (a hostile header fails with a
// message, never an allocation bomb), every update as it lands (endpoint
// range, self-loops, weight/op discipline), and the payload checksum --
// incrementally on the batched path, bit-compatible with the whole-file
// reader. See tests/graph/test_update_stream.cpp for the hostile-input
// sweep.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "graph/types.hpp"

namespace spar::graph {

inline constexpr char kUpdateMagic[8] = {'S', 'P', 'A', 'R', 'D', 'Y', 'N', '\0'};
inline constexpr std::uint32_t kUpdateVersion = 1;

/// Update opcodes as stored in SPARDYN's op[] payload.
enum class UpdateOp : std::uint8_t { kInsert = 0, kDelete = 1 };

/// SoA batch of edge updates (the dynamic counterpart of EdgeArena). Update
/// i is op[i] of edge {u[i], v[i]}; w[i] is the insert weight (0 for
/// deletes). Order is the arrival order and is semantically load-bearing:
/// a delete cancels the latest matching live insert.
struct UpdateBatch {
  Vertex num_vertices = 0;
  std::vector<Vertex> u, v;
  std::vector<double> w;
  std::vector<std::uint8_t> op;

  std::size_t size() const { return u.size(); }

  void clear() {
    u.clear();
    v.clear();
    w.clear();
    op.clear();
  }

  void push_insert(Vertex a, Vertex b, double weight) {
    u.push_back(a);
    v.push_back(b);
    w.push_back(weight);
    op.push_back(static_cast<std::uint8_t>(UpdateOp::kInsert));
  }

  void push_delete(Vertex a, Vertex b) {
    u.push_back(a);
    v.push_back(b);
    w.push_back(0.0);
    op.push_back(static_cast<std::uint8_t>(UpdateOp::kDelete));
  }

  /// Append updates [first, last) of `other` (same vertex count required
  /// unless this batch is empty, in which case it adopts other's).
  void append(const UpdateBatch& other, std::size_t first, std::size_t last);

  /// Check every update: endpoints < n, no self-loops, op in {0, 1}, insert
  /// weights finite > 0, delete weights exactly 0. Throws spar::Error naming
  /// the first offending index.
  void validate() const;
};

/// Bounded-memory pull source of update batches, mirroring EdgeStream: the
/// stream knows its totals up front and serves updates in on-disk order,
/// `max_updates` at a time, so batch boundaries are a pure function of
/// (stream, batch size).
class UpdateStream {
 public:
  virtual ~UpdateStream() = default;

  virtual Vertex num_vertices() const = 0;
  /// Total number of updates this stream will yield.
  virtual std::size_t num_updates() const = 0;
  /// Refill `out` with the next min(max_updates, remaining) updates; returns
  /// the batch size, 0 once exhausted. Updates are validated as they land;
  /// throws spar::Error on any malformed input.
  virtual std::size_t next_batch(UpdateBatch& out, std::size_t max_updates) = 0;
};

/// Serves a resident UpdateBatch in slab order; the in-memory reference the
/// file streams must agree with.
class MemoryUpdateStream final : public UpdateStream {
 public:
  explicit MemoryUpdateStream(const UpdateBatch& updates) : updates_(&updates) {}

  Vertex num_vertices() const override { return updates_->num_vertices; }
  std::size_t num_updates() const override { return updates_->size(); }
  std::size_t next_batch(UpdateBatch& out, std::size_t max_updates) override;

 private:
  const UpdateBatch* updates_;
  std::size_t cursor_ = 0;
};

/// Streams the text format in bounded memory, line at a time, with 1-based
/// line numbers in every diagnostic.
class TextUpdateStream final : public UpdateStream {
 public:
  explicit TextUpdateStream(const std::string& path);
  ~TextUpdateStream() override;

  Vertex num_vertices() const override;
  std::size_t num_updates() const override;
  std::size_t next_batch(UpdateBatch& out, std::size_t max_updates) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Streams a SPARDYN file in bounded memory: the header is fully validated
/// up front (magic, version, flags, n/c plausibility, file length vs the
/// declared update count -- a corrupt header fails before any allocation),
/// a batch is four seeked slice reads, each batch is validated as it lands,
/// and the incremental payload checksum is verified at the last batch.
class BinaryUpdateStream final : public UpdateStream {
 public:
  explicit BinaryUpdateStream(const std::string& path);
  ~BinaryUpdateStream() override;

  Vertex num_vertices() const override;
  std::size_t num_updates() const override;
  std::size_t next_batch(UpdateBatch& out, std::size_t max_updates) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Bytes a SPARDYN file with c updates occupies on disk (header + payload).
std::size_t update_file_size(std::size_t c);

void write_updates(std::ostream& out, const UpdateBatch& updates);
/// Format by extension: ".txt" text, anything else SPARDYN binary.
void save_updates(const std::string& path, const UpdateBatch& updates);
/// Whole-file load through the streaming reader (full validation).
UpdateBatch load_updates(const std::string& path);

/// Opens `path` as a batched update stream: SPARDYN magic -> binary,
/// anything else the text format.
std::unique_ptr<UpdateStream> open_update_stream(const std::string& path);

/// True when the stream starts with the SPARDYN magic; consumes nothing.
bool has_update_magic(std::istream& in);

/// Deterministic mixed insert/delete workload over `g` (coalesced first, so
/// inserts are unique): every edge is inserted exactly once in a seeded
/// shuffled order, and a seeded subset of round(delete_fraction * m) edges
/// is deleted at a uniformly random point after its insert -- the surviving
/// multiset is g minus the deleted subset. This is the shared workload
/// vocabulary of bench_dynamic (E17), the oracle-differential fuzz suite,
/// and sparsify_tool --make-updates.
UpdateBatch synthesize_updates(const Graph& g, double delete_fraction,
                               std::uint64_t seed);

}  // namespace spar::graph
