#include "graph/shard_slice.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace spar::graph {

void ShardAdjacency::rebuild(const EdgeView& edges, const VertexPartition& part,
                             std::size_t shard) {
  SPAR_CHECK(part.n == edges.num_vertices,
             "ShardAdjacency: partition is over a different vertex set");
  first_ = part.begin(shard);
  const Vertex last = part.end(shard);
  const std::size_t owned = last - first_;

  offsets_.assign(owned + 1, 0);
  cursor_.assign(owned, 0);

  // Counting sort over owned endpoints only; each edge contributes an arc
  // per owned endpoint (0, 1 or 2 of them).
  for (std::size_t e = 0; e < edges.size; ++e) {
    const Vertex u = edges.u[e];
    const Vertex v = edges.v[e];
    if (u >= first_ && u < last) ++offsets_[u - first_ + 1];
    if (v >= first_ && v < last) ++offsets_[v - first_ + 1];
  }
  for (std::size_t i = 1; i <= owned; ++i) offsets_[i] += offsets_[i - 1];
  arcs_.resize(offsets_[owned]);

  for (std::size_t e = 0; e < edges.size; ++e) {
    const Vertex u = edges.u[e];
    const Vertex v = edges.v[e];
    const double w = edges.w[e];
    if (u >= first_ && u < last) {
      const std::size_t l = u - first_;
      arcs_[offsets_[l] + cursor_[l]++] = {v, w, static_cast<EdgeId>(e)};
    }
    if (v >= first_ && v < last) {
      const std::size_t l = v - first_;
      arcs_[offsets_[l] + cursor_[l]++] = {u, w, static_cast<EdgeId>(e)};
    }
  }

  // Canonical (target, edge id) row order, matching CSRGraph: the sharded
  // protocol must see vertices' neighbourhoods exactly as the shared-memory
  // code does, whatever the shard count.
  for (std::size_t l = 0; l < owned; ++l) {
    std::sort(arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[l]),
              arcs_.begin() + static_cast<std::ptrdiff_t>(offsets_[l + 1]),
              [](const Arc& a, const Arc& b) {
                if (a.to != b.to) return a.to < b.to;
                return a.id < b.id;
              });
  }
}

ShardSlice make_shard_slice(const EdgeView& edges, const VertexPartition& part,
                            std::size_t shard) {
  ShardSlice slice;
  std::size_t count = 0;
  for (std::size_t e = 0; e < edges.size; ++e)
    if (part.owner(edges.u[e]) == shard) ++count;

  slice.arena.resize(edges.num_vertices, count);
  slice.global_ids.reserve(count);
  auto u = slice.arena.mutable_u();
  auto v = slice.arena.mutable_v();
  auto w = slice.arena.weights();
  std::size_t at = 0;
  for (std::size_t e = 0; e < edges.size; ++e) {
    if (part.owner(edges.u[e]) != shard) continue;
    u[at] = edges.u[e];
    v[at] = edges.v[e];
    w[at] = edges.w[e];
    slice.global_ids.push_back(static_cast<EdgeId>(e));
    ++at;
  }
  return slice;
}

}  // namespace spar::graph
