#include "graph/io_binary.hpp"

#include <algorithm>
#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <vector>

#include "support/assert.hpp"
#include "support/framing.hpp"
#include "support/rng.hpp"

namespace spar::graph {

namespace framing = support::framing;

namespace {

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t checksum;
};
static_assert(sizeof(Header) == 40, "binary header layout is part of the format");

// Largest m the reader will attempt to allocate (16 bytes/edge => 16 TiB);
// anything bigger is a corrupt or hostile header, not a graph.
constexpr std::uint64_t kMaxEdges = std::uint64_t{1} << 40;

// The checksum discipline (chunked FNV-1a folded in chunk order, incremental
// slice mirror) lives in support/framing.hpp, shared with the solver-service
// wire protocol. The values are part of the SPARBIN v1 format.
std::uint64_t payload_checksum(const EdgeView& view) {
  std::uint64_t h = support::mix64(view.num_vertices, view.size);
  h = framing::checksum_bytes(view.u, view.size * sizeof(Vertex), h);
  h = framing::checksum_bytes(view.v, view.size * sizeof(Vertex), h);
  h = framing::checksum_bytes(view.w, view.size * sizeof(double), h);
  return h;
}

void write_raw(std::ostream& out, const void* data, std::size_t len) {
  if (len == 0) return;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(out.good(), "write_binary: stream write failed");
}

void read_raw(std::istream& in, void* data, std::size_t len, const char* what) {
  if (len == 0) return;
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(in.gcount() == static_cast<std::streamsize>(len) && !in.bad(),
             std::string("read_binary: truncated ") + what);
}

}  // namespace

std::size_t binary_file_size(std::size_t m) {
  return sizeof(Header) + m * (2 * sizeof(Vertex) + sizeof(double));
}

void write_binary(std::ostream& out, const EdgeView& view) {
  Header h = {};
  std::memcpy(h.magic, kBinaryMagic, sizeof(h.magic));
  h.version = kBinaryVersion;
  h.flags = 0;
  h.n = view.num_vertices;
  h.m = view.size;
  h.checksum = payload_checksum(view);
  write_raw(out, &h, sizeof(h));
  write_raw(out, view.u, view.size * sizeof(Vertex));
  write_raw(out, view.v, view.size * sizeof(Vertex));
  write_raw(out, view.w, view.size * sizeof(double));
}

void write_binary(std::ostream& out, const Graph& g) {
  EdgeArena arena(g);
  write_binary(out, arena.view());
}

namespace {

/// Read + fully validate a SPARBIN header (magic, version, flags, n/m
/// plausibility). Shared by the whole-file reader and BinaryEdgeStream so
/// hostile headers fail identically on both paths.
Header read_checked_header(std::istream& in) {
  Header h = {};
  read_raw(in, &h, sizeof(h), "header");
  SPAR_CHECK(std::memcmp(h.magic, kBinaryMagic, sizeof(h.magic)) == 0,
             "read_binary: bad magic (not a SPARBIN file)");
  SPAR_CHECK(h.version == kBinaryVersion,
             "read_binary: unsupported version " + std::to_string(h.version) +
                 " (reader supports " + std::to_string(kBinaryVersion) + ")");
  SPAR_CHECK(h.flags == 0, "read_binary: nonzero reserved flags");
  SPAR_CHECK(h.n <= std::numeric_limits<Vertex>::max(),
             "read_binary: vertex count exceeds 32-bit vertex ids");
  SPAR_CHECK(h.m <= kMaxEdges, "read_binary: implausible edge count (corrupt header)");
  return h;
}

/// Before allocating 16 bytes per claimed edge, check the claim against the
/// stream length where the stream is seekable (files and stringstreams are):
/// a corrupt header must fail with a message, not an allocation the size of
/// the address space. `pos` is the position right after the header.
void check_payload_length(std::istream& in, std::istream::pos_type pos,
                          std::uint64_t payload_bytes) {
  if (pos == std::istream::pos_type(-1)) return;
  in.seekg(0, std::ios::end);
  const auto stream_end = in.tellg();
  in.seekg(pos);
  if (stream_end != std::istream::pos_type(-1))
    SPAR_CHECK(static_cast<std::uint64_t>(stream_end - pos) == payload_bytes,
               "read_binary: stream length does not match the header's edge count");
}

}  // namespace

void read_binary(std::istream& in, EdgeArena& arena) {
  const Header h = read_checked_header(in);
  const std::uint64_t payload_bytes = h.m * (2 * sizeof(Vertex) + sizeof(double));
  check_payload_length(in, in.tellg(), payload_bytes);

  arena.resize(static_cast<Vertex>(h.n), static_cast<std::size_t>(h.m));
  read_raw(in, arena.mutable_u().data(), arena.size() * sizeof(Vertex), "u[] payload");
  read_raw(in, arena.mutable_v().data(), arena.size() * sizeof(Vertex), "v[] payload");
  read_raw(in, arena.weights().data(), arena.size() * sizeof(double), "w[] payload");
  SPAR_CHECK(in.peek() == std::istream::traits_type::eof(),
             "read_binary: trailing bytes after payload");
  SPAR_CHECK(payload_checksum(arena.view()) == h.checksum,
             "read_binary: checksum mismatch (corrupt payload)");
  arena.validate();
}

Graph read_binary(std::istream& in) {
  EdgeArena arena;
  read_binary(in, arena);
  return arena.to_graph();
}

void save_binary(const std::string& path, const EdgeView& view) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SPAR_CHECK(out.good(), "save_binary: cannot open " + path);
  write_binary(out, view);
}

void save_binary(const std::string& path, const Graph& g) {
  EdgeArena arena(g);
  save_binary(path, arena.view());
}

void load_binary(const std::string& path, EdgeArena& arena) {
  std::ifstream in(path, std::ios::binary);
  SPAR_CHECK(in.good(), "load_binary: cannot open " + path);
  read_binary(in, arena);
}

Graph load_binary(const std::string& path) {
  EdgeArena arena;
  load_binary(path, arena);
  return arena.to_graph();
}

struct BinaryEdgeStream::Impl {
  std::ifstream in;
  Header h = {};
  std::size_t cursor = 0;  ///< edges served so far
  std::uint64_t u_off = 0, v_off = 0, w_off = 0;
  framing::ChunkedHasher hash_u, hash_v, hash_w;
  bool verified = false;
};

BinaryEdgeStream::BinaryEdgeStream(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  Impl& s = *impl_;
  s.in.open(path, std::ios::binary);
  SPAR_CHECK(s.in.good(), "stream_binary: cannot open " + path);
  s.h = read_checked_header(s.in);
  const std::uint64_t word_bytes = sizeof(Vertex);
  const std::uint64_t payload_bytes = s.h.m * (2 * word_bytes + sizeof(double));
  check_payload_length(s.in, s.in.tellg(), payload_bytes);
  s.u_off = sizeof(Header);
  s.v_off = s.u_off + s.h.m * word_bytes;
  s.w_off = s.v_off + s.h.m * word_bytes;
  s.hash_u.init(s.h.m * word_bytes);
  s.hash_v.init(s.h.m * word_bytes);
  s.hash_w.init(s.h.m * sizeof(double));
  if (s.h.m == 0) {
    // No batches will be served; the (empty-payload) checksum still binds
    // the header's n and m, so verify it here.
    std::uint64_t h = support::mix64(s.h.n, s.h.m);
    h = s.hash_u.fold(h);
    h = s.hash_v.fold(h);
    h = s.hash_w.fold(h);
    SPAR_CHECK(h == s.h.checksum,
               "stream_binary: checksum mismatch (corrupt payload)");
    s.verified = true;
  }
}

BinaryEdgeStream::~BinaryEdgeStream() = default;

Vertex BinaryEdgeStream::num_vertices() const {
  return static_cast<Vertex>(impl_->h.n);
}
std::size_t BinaryEdgeStream::num_edges() const {
  return static_cast<std::size_t>(impl_->h.m);
}

std::size_t BinaryEdgeStream::next_batch(EdgeArena& out, std::size_t max_edges) {
  SPAR_CHECK(max_edges > 0, "stream_binary: max_edges must be positive");
  Impl& s = *impl_;
  const std::size_t k =
      std::min(max_edges, static_cast<std::size_t>(s.h.m) - s.cursor);
  if (k == 0) return 0;

  // Three seeked slice reads land the SoA batch straight in the arena; each
  // slice rolls into the incremental payload checksum.
  out.resize(static_cast<Vertex>(s.h.n), k);
  const auto read_slice = [&](std::uint64_t base, void* dst, std::size_t elem_bytes,
                              framing::ChunkedHasher& hasher, const char* what) {
    s.in.seekg(static_cast<std::streamoff>(base + s.cursor * elem_bytes));
    read_raw(s.in, dst, k * elem_bytes, what);
    hasher.feed(dst, k * elem_bytes);
  };
  read_slice(s.u_off, out.mutable_u().data(), sizeof(Vertex), s.hash_u, "u[] payload");
  read_slice(s.v_off, out.mutable_v().data(), sizeof(Vertex), s.hash_v, "v[] payload");
  read_slice(s.w_off, out.weights().data(), sizeof(double), s.hash_w, "w[] payload");
  s.cursor += k;

  if (s.cursor == static_cast<std::size_t>(s.h.m) && !s.verified) {
    std::uint64_t h = support::mix64(s.h.n, s.h.m);
    h = s.hash_u.fold(h);
    h = s.hash_v.fold(h);
    h = s.hash_w.fold(h);
    SPAR_CHECK(h == s.h.checksum,
               "stream_binary: checksum mismatch (corrupt payload)");
    s.verified = true;
  }
  out.validate();
  return k;
}

bool has_binary_magic(std::istream& in) {
  char buf[sizeof(kBinaryMagic)] = {};
  const auto pos = in.tellg();
  in.read(buf, sizeof(buf));
  const bool ok =
      in.gcount() == sizeof(buf) && std::memcmp(buf, kBinaryMagic, sizeof(buf)) == 0;
  in.clear();
  in.seekg(pos);
  return ok;
}

}  // namespace spar::graph
