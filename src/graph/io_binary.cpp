#include "graph/io_binary.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <limits>
#include <ostream>

#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::graph {

namespace par = support::par;

namespace {

struct Header {
  char magic[8];
  std::uint32_t version;
  std::uint32_t flags;
  std::uint64_t n;
  std::uint64_t m;
  std::uint64_t checksum;
};
static_assert(sizeof(Header) == 40, "binary header layout is part of the format");

// Largest m the reader will attempt to allocate (16 bytes/edge => 16 TiB);
// anything bigger is a corrupt or hostile header, not a graph.
constexpr std::uint64_t kMaxEdges = std::uint64_t{1} << 40;

std::uint64_t fnv1a(const unsigned char* p, std::size_t len, std::uint64_t h) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

/// Chunked FNV-1a folded in chunk order. Chunk boundaries come from
/// default_grain (a pure function of the length), so the value is identical
/// for every thread count and for the serial build.
std::uint64_t checksum_bytes(const void* data, std::size_t len, std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  constexpr std::uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  return par::parallel_reduce(
      0, static_cast<std::int64_t>(len), support::mix64(seed, len),
      [&](std::int64_t cb, std::int64_t ce) {
        return fnv1a(bytes + cb, static_cast<std::size_t>(ce - cb), kOffsetBasis);
      },
      [](std::uint64_t acc, std::uint64_t part) { return support::mix64(acc, part); });
}

std::uint64_t payload_checksum(const EdgeView& view) {
  std::uint64_t h = support::mix64(view.num_vertices, view.size);
  h = checksum_bytes(view.u, view.size * sizeof(Vertex), h);
  h = checksum_bytes(view.v, view.size * sizeof(Vertex), h);
  h = checksum_bytes(view.w, view.size * sizeof(double), h);
  return h;
}

void write_raw(std::ostream& out, const void* data, std::size_t len) {
  if (len == 0) return;
  out.write(static_cast<const char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(out.good(), "write_binary: stream write failed");
}

void read_raw(std::istream& in, void* data, std::size_t len, const char* what) {
  if (len == 0) return;
  in.read(static_cast<char*>(data), static_cast<std::streamsize>(len));
  SPAR_CHECK(in.gcount() == static_cast<std::streamsize>(len) && !in.bad(),
             std::string("read_binary: truncated ") + what);
}

}  // namespace

std::size_t binary_file_size(std::size_t m) {
  return sizeof(Header) + m * (2 * sizeof(Vertex) + sizeof(double));
}

void write_binary(std::ostream& out, const EdgeView& view) {
  Header h = {};
  std::memcpy(h.magic, kBinaryMagic, sizeof(h.magic));
  h.version = kBinaryVersion;
  h.flags = 0;
  h.n = view.num_vertices;
  h.m = view.size;
  h.checksum = payload_checksum(view);
  write_raw(out, &h, sizeof(h));
  write_raw(out, view.u, view.size * sizeof(Vertex));
  write_raw(out, view.v, view.size * sizeof(Vertex));
  write_raw(out, view.w, view.size * sizeof(double));
}

void write_binary(std::ostream& out, const Graph& g) {
  EdgeArena arena(g);
  write_binary(out, arena.view());
}

void read_binary(std::istream& in, EdgeArena& arena) {
  Header h = {};
  read_raw(in, &h, sizeof(h), "header");
  SPAR_CHECK(std::memcmp(h.magic, kBinaryMagic, sizeof(h.magic)) == 0,
             "read_binary: bad magic (not a SPARBIN file)");
  SPAR_CHECK(h.version == kBinaryVersion,
             "read_binary: unsupported version " + std::to_string(h.version) +
                 " (reader supports " + std::to_string(kBinaryVersion) + ")");
  SPAR_CHECK(h.flags == 0, "read_binary: nonzero reserved flags");
  SPAR_CHECK(h.n <= std::numeric_limits<Vertex>::max(),
             "read_binary: vertex count exceeds 32-bit vertex ids");
  SPAR_CHECK(h.m <= kMaxEdges, "read_binary: implausible edge count (corrupt header)");

  // Before allocating 16 bytes per claimed edge, check the claim against the
  // stream length where the stream is seekable (files and stringstreams are):
  // a corrupt header must fail with a message, not an allocation the size of
  // the address space.
  const std::uint64_t payload_bytes = h.m * (2 * sizeof(Vertex) + sizeof(double));
  const auto pos = in.tellg();
  if (pos != std::istream::pos_type(-1)) {
    in.seekg(0, std::ios::end);
    const auto stream_end = in.tellg();
    in.seekg(pos);
    if (stream_end != std::istream::pos_type(-1))
      SPAR_CHECK(static_cast<std::uint64_t>(stream_end - pos) == payload_bytes,
                 "read_binary: stream length does not match the header's edge count");
  }

  arena.resize(static_cast<Vertex>(h.n), static_cast<std::size_t>(h.m));
  read_raw(in, arena.mutable_u().data(), arena.size() * sizeof(Vertex), "u[] payload");
  read_raw(in, arena.mutable_v().data(), arena.size() * sizeof(Vertex), "v[] payload");
  read_raw(in, arena.weights().data(), arena.size() * sizeof(double), "w[] payload");
  SPAR_CHECK(in.peek() == std::istream::traits_type::eof(),
             "read_binary: trailing bytes after payload");
  SPAR_CHECK(payload_checksum(arena.view()) == h.checksum,
             "read_binary: checksum mismatch (corrupt payload)");
  arena.validate();
}

Graph read_binary(std::istream& in) {
  EdgeArena arena;
  read_binary(in, arena);
  return arena.to_graph();
}

void save_binary(const std::string& path, const EdgeView& view) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  SPAR_CHECK(out.good(), "save_binary: cannot open " + path);
  write_binary(out, view);
}

void save_binary(const std::string& path, const Graph& g) {
  EdgeArena arena(g);
  save_binary(path, arena.view());
}

void load_binary(const std::string& path, EdgeArena& arena) {
  std::ifstream in(path, std::ios::binary);
  SPAR_CHECK(in.good(), "load_binary: cannot open " + path);
  read_binary(in, arena);
}

Graph load_binary(const std::string& path) {
  EdgeArena arena;
  load_binary(path, arena);
  return arena.to_graph();
}

bool has_binary_magic(std::istream& in) {
  char buf[sizeof(kBinaryMagic)] = {};
  const auto pos = in.tellg();
  in.read(buf, sizeof(buf));
  const bool ok =
      in.gcount() == sizeof(buf) && std::memcmp(buf, kBinaryMagic, sizeof(buf)) == 0;
  in.clear();
  in.seekg(pos);
  return ok;
}

}  // namespace spar::graph
