// Fundamental graph types shared across libspar.
#pragma once

#include <cstddef>
#include <cstdint>

namespace spar::graph {

using Vertex = std::uint32_t;
using EdgeId = std::size_t;

inline constexpr Vertex kInvalidVertex = static_cast<Vertex>(-1);
inline constexpr EdgeId kInvalidEdge = static_cast<EdgeId>(-1);

/// Undirected weighted edge. Weight w > 0 is a *conductance*; the electrical
/// resistance of the edge is 1/w (Section 2 of the paper).
struct Edge {
  Vertex u = 0;
  Vertex v = 0;
  double w = 1.0;

  friend bool operator==(const Edge&, const Edge&) = default;
};

/// Resistance (= length in the paper's stretch metric) of an edge.
inline double resistance(const Edge& e) { return 1.0 / e.w; }

}  // namespace spar::graph
