#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/error.hpp"
#include "support/options.hpp"
#include "support/rng.hpp"

namespace spar::graph {

using support::Rng;

Graph path_graph(Vertex n, double w) {
  Graph g(n);
  for (Vertex v = 0; v + 1 < n; ++v) g.add_edge(v, v + 1, w);
  return g;
}

Graph cycle_graph(Vertex n, double w) {
  SPAR_CHECK(n >= 3, "cycle_graph: need n >= 3");
  Graph g = path_graph(n, w);
  g.add_edge(n - 1, 0, w);
  return g;
}

Graph star_graph(Vertex n, double w) {
  SPAR_CHECK(n >= 1, "star_graph: need n >= 1");
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(0, v, w);
  return g;
}

Graph complete_graph(Vertex n, double w) {
  Graph g(n);
  g.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (Vertex u = 0; u < n; ++u)
    for (Vertex v = u + 1; v < n; ++v) g.add_edge(u, v, w);
  return g;
}

Graph complete_bipartite(Vertex a, Vertex b, double w) {
  Graph g(a + b);
  for (Vertex u = 0; u < a; ++u)
    for (Vertex v = 0; v < b; ++v) g.add_edge(u, a + v, w);
  return g;
}

Graph binary_tree(Vertex n, double w) {
  Graph g(n);
  for (Vertex v = 1; v < n; ++v) g.add_edge(v, (v - 1) / 2, w);
  return g;
}

Graph grid2d(Vertex rows, Vertex cols, double w) {
  Graph g(rows * cols);
  auto id = [cols](Vertex r, Vertex c) { return r * cols + c; };
  for (Vertex r = 0; r < rows; ++r) {
    for (Vertex c = 0; c < cols; ++c) {
      if (c + 1 < cols) g.add_edge(id(r, c), id(r, c + 1), w);
      if (r + 1 < rows) g.add_edge(id(r, c), id(r + 1, c), w);
    }
  }
  return g;
}

Graph grid3d(Vertex nx, Vertex ny, Vertex nz, double w) {
  Graph g(nx * ny * nz);
  auto id = [ny, nz](Vertex x, Vertex y, Vertex z) { return (x * ny + y) * nz + z; };
  for (Vertex x = 0; x < nx; ++x)
    for (Vertex y = 0; y < ny; ++y)
      for (Vertex z = 0; z < nz; ++z) {
        if (x + 1 < nx) g.add_edge(id(x, y, z), id(x + 1, y, z), w);
        if (y + 1 < ny) g.add_edge(id(x, y, z), id(x, y + 1, z), w);
        if (z + 1 < nz) g.add_edge(id(x, y, z), id(x, y, z + 1), w);
      }
  return g;
}

Graph erdos_renyi(Vertex n, double p, std::uint64_t seed) {
  SPAR_CHECK(p >= 0.0 && p <= 1.0, "erdos_renyi: p out of range");
  Graph g(n);
  Rng rng(seed);
  if (p <= 0.0 || n < 2) return g;
  // Geometric skipping: O(m) expected time instead of O(n^2).
  const double log_q = std::log1p(-p);
  if (p >= 1.0) return complete_graph(n);
  std::int64_t total = static_cast<std::int64_t>(n) * (n - 1) / 2;
  std::int64_t idx = -1;
  for (;;) {
    double u = rng.uniform();
    while (u <= 0.0) u = rng.uniform();
    idx += 1 + static_cast<std::int64_t>(std::floor(std::log(u) / log_q));
    if (idx >= total) break;
    // Map linear index to (u, v), u < v.
    const auto row = static_cast<Vertex>(
        (std::sqrt(8.0 * static_cast<double>(idx) + 1.0) + 1.0) / 2.0);
    Vertex r = row;
    while (static_cast<std::int64_t>(r) * (r - 1) / 2 > idx) --r;
    while (static_cast<std::int64_t>(r + 1) * r / 2 <= idx) ++r;
    const auto col = static_cast<Vertex>(idx - static_cast<std::int64_t>(r) * (r - 1) / 2);
    g.add_edge(r, col, 1.0);
  }
  return g;
}

Graph connected_erdos_renyi(Vertex n, double p, std::uint64_t seed) {
  Graph g = erdos_renyi(n, p, seed);
  // Random-permutation Hamiltonian path backbone guarantees connectivity.
  std::vector<Vertex> perm(n);
  std::iota(perm.begin(), perm.end(), Vertex{0});
  Rng rng(support::mix64(seed, 0xbacbacULL));
  for (Vertex i = n; i > 1; --i) {
    const auto j = static_cast<Vertex>(rng.below(i));
    std::swap(perm[i - 1], perm[j]);
  }
  Graph out(n);
  out.reserve(g.num_edges() + n);
  for (const Edge& e : g.edges()) out.add_edge(e.u, e.v, e.w);
  for (Vertex i = 0; i + 1 < n; ++i) out.add_edge(perm[i], perm[i + 1], 1.0);
  return out.coalesced();
}

Graph random_regular(Vertex n, Vertex d, std::uint64_t seed) {
  SPAR_CHECK(static_cast<std::uint64_t>(n) * d % 2 == 0, "random_regular: n*d must be even");
  SPAR_CHECK(d < n || d == 0, "random_regular: need d < n");
  Rng rng(seed);
  if (d == 0) return Graph(n);

  // Stub pairing with switch repair. The old pairing DROPPED self-pairs and
  // duplicate pairs, so degrees only concentrated near d; here a bad pair is
  // repaired by the standard edge switch (swap second endpoints with a random
  // other pair, accept iff both replacement pairs are simple), which
  // preserves the stub multiset -- every vertex keeps exactly d endpoints.
  // A stuck repair (possible but vanishingly rare for d < n) reshuffles and
  // starts over, so the result is always exactly d-regular and simple.
  const std::size_t num_pairs = static_cast<std::size_t>(n) * d / 2;
  std::vector<Vertex> stubs;
  stubs.reserve(2 * num_pairs);
  for (Vertex v = 0; v < n; ++v)
    for (Vertex i = 0; i < d; ++i) stubs.push_back(v);

  const auto norm = [](Vertex a, Vertex b) {
    return a < b ? std::pair<Vertex, Vertex>{a, b} : std::pair<Vertex, Vertex>{b, a};
  };

  for (;;) {  // restart loop; each iteration nearly always succeeds
    for (std::size_t i = stubs.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(rng.below(i));
      std::swap(stubs[i - 1], stubs[j]);
    }
    // seen counts normalized pairs; a pair is bad if it is a self-loop or a
    // second (or later) copy of an edge.
    std::map<std::pair<Vertex, Vertex>, std::size_t> seen;
    std::vector<std::size_t> bad;
    for (std::size_t i = 0; i < num_pairs; ++i) {
      const Vertex a = stubs[2 * i], b = stubs[2 * i + 1];
      if (a == b || ++seen[norm(a, b)] > 1) bad.push_back(i);
    }

    const auto is_simple = [&](Vertex a, Vertex b) {
      if (a == b) return false;
      const auto it = seen.find(norm(a, b));
      return it == seen.end() || it->second == 0;
    };
    const auto count = [&](Vertex a, Vertex b, std::size_t delta) {
      if (a != b) seen[norm(a, b)] += delta;
    };

    // Repair: switch each bad pair against random partners until both
    // resulting pairs are simple. Budgeted; on exhaustion, reshuffle.
    std::size_t attempts_left = 200 * num_pairs + 1000;
    while (!bad.empty() && attempts_left > 0) {
      --attempts_left;
      const std::size_t i = bad.back();
      const std::size_t j = static_cast<std::size_t>(rng.below(num_pairs));
      if (j == i) continue;
      Vertex& ai = stubs[2 * i];
      Vertex& bi = stubs[2 * i + 1];
      Vertex& aj = stubs[2 * j];
      Vertex& bj = stubs[2 * j + 1];
      // Temporarily retire both pairs' edge counts (count() ignores
      // self-loops, so a self-loop pair simply contributes nothing).
      count(ai, bi, static_cast<std::size_t>(-1));
      count(aj, bj, static_cast<std::size_t>(-1));
      if (is_simple(ai, bj) && is_simple(aj, bi) && norm(ai, bj) != norm(aj, bi)) {
        std::swap(bi, bj);
        count(ai, bi, 1);
        count(aj, bj, 1);
        // Both replacement pairs were checked simple against everything else,
        // so the switch fixes pair i and cannot create a new bad pair.
        bad.pop_back();
      } else {
        count(ai, bi, 1);
        count(aj, bj, 1);
      }
    }
    if (!bad.empty()) continue;  // pathological shuffle; try again

    Graph g(n);
    g.reserve(num_pairs);
    for (std::size_t i = 0; i < num_pairs; ++i)
      g.add_edge(stubs[2 * i], stubs[2 * i + 1], 1.0);
    return g;
  }
}

Graph preferential_attachment(Vertex n, Vertex k, std::uint64_t seed) {
  SPAR_CHECK(n > k && k >= 1, "preferential_attachment: need n > k >= 1");
  Rng rng(seed);
  Graph g(n);
  // Target list doubles as the degree-proportional sampling urn.
  std::vector<Vertex> urn;
  // Seed clique on k+1 vertices.
  for (Vertex u = 0; u <= k; ++u)
    for (Vertex v = u + 1; v <= k; ++v) {
      g.add_edge(u, v, 1.0);
      urn.push_back(u);
      urn.push_back(v);
    }
  for (Vertex v = k + 1; v < n; ++v) {
    std::set<Vertex> targets;
    while (targets.size() < k) {
      const Vertex t = urn[static_cast<std::size_t>(rng.below(urn.size()))];
      if (t != v) targets.insert(t);
    }
    for (Vertex t : targets) {
      g.add_edge(v, t, 1.0);
      urn.push_back(v);
      urn.push_back(t);
    }
  }
  return g;
}

Graph watts_strogatz(Vertex n, Vertex k, double beta, std::uint64_t seed) {
  SPAR_CHECK(n > 2 * k && k >= 1, "watts_strogatz: need n > 2k");
  Rng rng(seed);
  std::set<std::pair<Vertex, Vertex>> edges;
  auto norm = [](Vertex a, Vertex b) {
    return a < b ? std::pair{a, b} : std::pair{b, a};
  };
  for (Vertex v = 0; v < n; ++v)
    for (Vertex j = 1; j <= k; ++j) edges.insert(norm(v, (v + j) % n));
  // Rewire.
  std::vector<std::pair<Vertex, Vertex>> all(edges.begin(), edges.end());
  for (const auto& [u, v] : all) {
    if (!rng.bernoulli(beta)) continue;
    edges.erase(norm(u, v));
    for (int tries = 0; tries < 64; ++tries) {
      const auto t = static_cast<Vertex>(rng.below(n));
      if (t == u || edges.count(norm(u, t)) > 0) continue;
      edges.insert(norm(u, t));
      break;
    }
  }
  Graph g(n);
  for (const auto& [u, v] : edges) g.add_edge(u, v, 1.0);
  return g;
}

Graph dumbbell(Vertex half, double bridge_w, std::uint64_t seed) {
  (void)seed;
  SPAR_CHECK(half >= 2, "dumbbell: need half >= 2");
  Graph g(2 * half);
  for (Vertex u = 0; u < half; ++u)
    for (Vertex v = u + 1; v < half; ++v) {
      g.add_edge(u, v, 1.0);
      g.add_edge(half + u, half + v, 1.0);
    }
  g.add_edge(0, half, bridge_w);
  return g;
}

Graph barbell(Vertex half, Vertex path_len, double w) {
  SPAR_CHECK(half >= 2 && path_len >= 1, "barbell: bad sizes");
  const Vertex n = 2 * half + (path_len - 1);
  Graph g(n);
  for (Vertex u = 0; u < half; ++u)
    for (Vertex v = u + 1; v < half; ++v) {
      g.add_edge(u, v, w);
      g.add_edge(half + path_len - 1 + u, half + path_len - 1 + v, w);
    }
  // Path from vertex 0 of clique A to vertex 0 of clique B through
  // path_len - 1 intermediate vertices.
  Vertex prev = 0;
  for (Vertex i = 0; i + 1 < path_len; ++i) {
    const Vertex mid = half + i;
    g.add_edge(prev, mid, w);
    prev = mid;
  }
  g.add_edge(prev, half + path_len - 1, w);
  return g;
}

Graph randomize_weights(const Graph& g, double log_range, std::uint64_t seed) {
  SPAR_CHECK(log_range >= 0.0, "randomize_weights: log_range must be >= 0");
  Graph out(g.num_vertices());
  out.reserve(g.num_edges());
  const auto edges = g.edges();
  for (EdgeId id = 0; id < edges.size(); ++id) {
    const double u = support::stream_uniform(seed, id);
    const double w = std::exp((2.0 * u - 1.0) * log_range);
    out.add_edge(edges[id].u, edges[id].v, edges[id].w * w);
  }
  return out;
}


namespace {

std::vector<std::string> split_spec(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t next = s.find(sep, pos);
    out.push_back(s.substr(pos, next == std::string::npos ? next : next - pos));
    if (next == std::string::npos) break;
    pos = next + 1;
  }
  return out;
}

}  // namespace

Graph generate_spec(const std::string& spec) {
  const std::string body = spec.rfind("gen:", 0) == 0 ? spec.substr(4) : spec;
  const auto parts = split_spec(body, ':');
  if (parts.empty() || parts[0].empty())
    throw spar::Error("bad gen spec: " + spec);
  const std::string& family = parts[0];
  const std::uint64_t seed =
      parts.size() > 2 ? support::parse_number<std::uint64_t>("gen seed", parts[2]) : 1;
  auto dims = [&](const char* what) {
    if (parts.size() < 2)
      throw spar::Error(std::string("gen:") + family + " needs " + what);
    return parts[1];
  };
  if (family == "grid" || family == "wgrid") {
    const auto rc = split_spec(dims("RxC"), 'x');
    if (rc.size() != 2) throw spar::Error("gen:grid wants RxC, got " + dims("RxC"));
    const auto g =
        grid2d(support::parse_number<Vertex>("grid rows", rc[0]),
               support::parse_number<Vertex>("grid cols", rc[1]));
    return family == "wgrid" ? randomize_weights(g, 2.0, seed) : g;
  }
  const auto n = support::parse_number<Vertex>("gen size", dims("a size"));
  if (family == "er") {
    const double p = std::min(1.0, 16.0 / static_cast<double>(n));
    return connected_erdos_renyi(n, p, seed);
  }
  if (family == "wer") {
    const double p = std::min(1.0, 16.0 / static_cast<double>(n));
    return randomize_weights(connected_erdos_renyi(n, p, seed), 2.0, seed + 1);
  }
  if (family == "complete") return complete_graph(n);
  if (family == "pa") return preferential_attachment(n, 4, seed);
  if (family == "ws") return watts_strogatz(n, 4, 0.1, seed);
  throw spar::Error("unknown gen family: " + family +
                    " (want grid, wgrid, er, wer, complete, pa, ws)");
}

}  // namespace spar::graph
