// Graph serialization: a simple whitespace edge-list format and MatrixMarket
// coordinate format for interoperability with standard sparse tooling.
//
// Edge-list format:
//   # optional comments
//   <num_vertices> <num_edges>
//   <u> <v> <w>    (0-based, one per line)
#pragma once

#include <iosfwd>
#include <string>

#include "graph/graph.hpp"

namespace spar::graph {

void write_edge_list(std::ostream& out, const Graph& g);
Graph read_edge_list(std::istream& in);

void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);

/// MatrixMarket "coordinate real symmetric": writes the weighted adjacency
/// matrix (lower triangle). Reading accepts general/symmetric coordinate
/// files and symmetrizes; diagonal entries are ignored.
void write_matrix_market(std::ostream& out, const Graph& g);
Graph read_matrix_market(std::istream& in);

}  // namespace spar::graph
