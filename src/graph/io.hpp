// Graph serialization: whitespace edge lists, MatrixMarket coordinate files,
// and the SPARBIN binary format (io_binary.hpp), plus format autodetection.
//
// Edge-list format:
//   # optional comments (also allowed between body lines)
//   <num_vertices> <num_edges>
//   <u> <v> [w]    (0-based, one per line; w defaults to 1.0)
//
// Text parsing is chunk-parallel: the file is split at line boundaries into
// thread-count-independent chunks, each parsed with std::from_chars, and the
// entries land at prefix-summed offsets directly in an EdgeArena -- the same
// SoA layout the sparsification round pipeline consumes, with the same edge
// order a serial line-at-a-time reader would produce. Errors carry 1-based
// line numbers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <string>
#include <string_view>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"

namespace spar::graph {

// ---------------------------------------------------------------------------
// Edge lists

void write_edge_list(std::ostream& out, const Graph& g);

/// Chunk-parallel parse of a complete edge-list document. Deterministic: the
/// resulting arena is identical for every thread count.
void parse_edge_list(std::string_view text, EdgeArena& arena);

Graph read_edge_list(std::istream& in);

void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);
void load_edge_list(const std::string& path, EdgeArena& arena);

// ---------------------------------------------------------------------------
// MatrixMarket coordinate format

/// What read_matrix_market saw and normalized; pass a struct to collect it.
struct MatrixMarketInfo {
  std::string field;              ///< "real", "integer" or "pattern"
  std::string symmetry;           ///< "general" or "symmetric"
  std::size_t entries = 0;        ///< body entries read
  std::size_t diagonal_dropped = 0;   ///< diagonal entries (no edge) skipped
  std::size_t zero_dropped = 0;       ///< explicit zero entries skipped
  std::size_t negative_flipped = 0;   ///< weights stored as |w|
  std::size_t mirrored_merged = 0;    ///< (i,j)/(j,i) pairs merged (general)
};

/// Writes "coordinate real symmetric" (lower triangle, 1-based). Parallel
/// edges are coalesced first: a matrix entry is unique, so the multigraph
/// collapses to its Laplacian-equivalent simple graph on disk.
void write_matrix_market(std::ostream& out, const Graph& g);

/// Reads coordinate real/integer/pattern x general/symmetric. Banner symmetry
/// is honored: a `general` file may list both (i,j) and (j,i) -- mirrored
/// pairs with equal weight merge into one edge, anything else (duplicate
/// entries, mismatched mirrors, upper-triangle entries in a `symmetric` file)
/// is rejected. Blank and %-comment lines are allowed in the body. Entries
/// must satisfy 1 <= r,c <= n; diagonal and explicit-zero entries carry no
/// edge and are skipped. `pattern` files take weight 1.0 by design; for
/// real/integer files a missing or malformed weight is an error. Negative
/// weights are stored as |w| (Laplacian off-diagonal convention) -- the flip
/// count is recorded in `info` and logged to stderr when info is null.
Graph read_matrix_market(std::istream& in, MatrixMarketInfo* info = nullptr);

void save_matrix_market(const std::string& path, const Graph& g);
Graph load_matrix_market(const std::string& path, MatrixMarketInfo* info = nullptr);

// ---------------------------------------------------------------------------
// Format dispatch

enum class GraphFormat { kEdgeList, kMatrixMarket, kBinary };

/// Case-insensitive extension mapping: .mtx/.mm -> MatrixMarket, .spb/.bin ->
/// binary, everything else edge list.
GraphFormat format_from_extension(const std::string& path);

/// Sniffs the file content (SPARBIN magic, %%MatrixMarket banner), falling
/// back to the extension for plain text.
GraphFormat detect_format(const std::string& path);

const char* format_name(GraphFormat f);

Graph load_graph(const std::string& path);                   ///< detect_format
Graph load_graph(const std::string& path, GraphFormat f);
void save_graph(const std::string& path, const Graph& g);    ///< by extension
void save_graph(const std::string& path, const Graph& g, GraphFormat f);

}  // namespace spar::graph
