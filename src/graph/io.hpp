// Graph serialization: whitespace edge lists, MatrixMarket coordinate files,
// and the SPARBIN binary format (io_binary.hpp), plus format autodetection.
//
// Edge-list format:
//   # optional comments (also allowed between body lines)
//   <num_vertices> <num_edges>
//   <u> <v> [w]    (0-based, one per line; w defaults to 1.0)
//
// Text parsing is chunk-parallel: the file is split at line boundaries into
// thread-count-independent chunks, each parsed with std::from_chars, and the
// entries land at prefix-summed offsets directly in an EdgeArena -- the same
// SoA layout the sparsification round pipeline consumes, with the same edge
// order a serial line-at-a-time reader would produce. Errors carry 1-based
// line numbers.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <string_view>

#include "graph/edge_view.hpp"
#include "graph/graph.hpp"

namespace spar::graph {

// ---------------------------------------------------------------------------
// Batched edge streams
//
// Bounded-memory pull source of edge batches: the entry point the streaming
// merge-and-reduce sparsifier (sparsify/stream.hpp) consumes. A stream knows
// its totals up front (file headers carry n and m) and serves edges in their
// on-disk/in-memory order, `max_edges` at a time, so batch boundaries are a
// pure function of (stream, batch size) -- never of the thread count.

class EdgeStream {
 public:
  virtual ~EdgeStream() = default;

  virtual Vertex num_vertices() const = 0;
  /// Total number of edges this stream will yield.
  virtual std::size_t num_edges() const = 0;
  /// Refill `out` with the next min(max_edges, remaining) edges; returns the
  /// batch size, 0 once the stream is exhausted. `out` is resized (buffers
  /// reused across calls); edges are validated as they land. Throws
  /// spar::Error on any malformed input.
  virtual std::size_t next_batch(EdgeArena& out, std::size_t max_edges) = 0;
};

/// Serves a resident EdgeView (or an owned arena) in slab order. The
/// in-memory reference implementation every file stream must agree with.
class MemoryEdgeStream final : public EdgeStream {
 public:
  /// Non-owning: `view` must outlive the stream.
  explicit MemoryEdgeStream(const EdgeView& view) : view_(view) {}
  /// Owning: adopts the arena (MatrixMarket streaming falls back to this).
  explicit MemoryEdgeStream(EdgeArena arena)
      : owned_(std::move(arena)), view_(owned_.view()) {}

  Vertex num_vertices() const override { return view_.num_vertices; }
  std::size_t num_edges() const override { return view_.size; }
  std::size_t next_batch(EdgeArena& out, std::size_t max_edges) override;

 private:
  EdgeArena owned_;
  EdgeView view_;
  std::size_t cursor_ = 0;
};

/// Streams an edge-list text file in bounded memory: lines are accumulated
/// until the batch holds `max_edges` entries, then the block is parsed by the
/// same chunk-parallel from_chars body parser load_edge_list uses (errors
/// carry real 1-based line numbers). Truncated or over-long files are
/// diagnosed exactly like the whole-file reader.
class TextEdgeStream final : public EdgeStream {
 public:
  explicit TextEdgeStream(const std::string& path);
  ~TextEdgeStream() override;

  Vertex num_vertices() const override;
  std::size_t num_edges() const override;
  std::size_t next_batch(EdgeArena& out, std::size_t max_edges) override;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Opens `path` as a batched edge stream, dispatching on detect_format():
/// SPARBIN -> BinaryEdgeStream (io_binary.hpp), edge list -> TextEdgeStream,
/// MatrixMarket -> whole-file load wrapped in a MemoryEdgeStream (the format
/// needs global symmetry reconciliation, so it cannot stream).
std::unique_ptr<EdgeStream> open_edge_stream(const std::string& path);

// ---------------------------------------------------------------------------
// Edge lists

void write_edge_list(std::ostream& out, const Graph& g);

/// Chunk-parallel parse of a complete edge-list document. Deterministic: the
/// resulting arena is identical for every thread count.
void parse_edge_list(std::string_view text, EdgeArena& arena);

Graph read_edge_list(std::istream& in);

void save_edge_list(const std::string& path, const Graph& g);
Graph load_edge_list(const std::string& path);
void load_edge_list(const std::string& path, EdgeArena& arena);

// ---------------------------------------------------------------------------
// MatrixMarket coordinate format

/// What read_matrix_market saw and normalized; pass a struct to collect it.
struct MatrixMarketInfo {
  std::string field;              ///< "real", "integer" or "pattern"
  std::string symmetry;           ///< "general" or "symmetric"
  std::size_t entries = 0;        ///< body entries read
  std::size_t diagonal_dropped = 0;   ///< diagonal entries (no edge) skipped
  std::size_t zero_dropped = 0;       ///< explicit zero entries skipped
  std::size_t negative_flipped = 0;   ///< weights stored as |w|
  std::size_t mirrored_merged = 0;    ///< (i,j)/(j,i) pairs merged (general)
};

/// Writes "coordinate real symmetric" (lower triangle, 1-based). Parallel
/// edges are coalesced first: a matrix entry is unique, so the multigraph
/// collapses to its Laplacian-equivalent simple graph on disk.
void write_matrix_market(std::ostream& out, const Graph& g);

/// Reads coordinate real/integer/pattern x general/symmetric. Banner symmetry
/// is honored: a `general` file may list both (i,j) and (j,i) -- mirrored
/// pairs with equal weight merge into one edge, anything else (duplicate
/// entries, mismatched mirrors, upper-triangle entries in a `symmetric` file)
/// is rejected. Blank and %-comment lines are allowed in the body. Entries
/// must satisfy 1 <= r,c <= n; diagonal and explicit-zero entries carry no
/// edge and are skipped. `pattern` files take weight 1.0 by design; for
/// real/integer files a missing or malformed weight is an error. Negative
/// weights are stored as |w| (Laplacian off-diagonal convention) -- the flip
/// count is recorded in `info` and logged to stderr when info is null.
Graph read_matrix_market(std::istream& in, MatrixMarketInfo* info = nullptr);

void save_matrix_market(const std::string& path, const Graph& g);
Graph load_matrix_market(const std::string& path, MatrixMarketInfo* info = nullptr);

// ---------------------------------------------------------------------------
// Format dispatch

enum class GraphFormat { kEdgeList, kMatrixMarket, kBinary };

/// Case-insensitive extension mapping: .mtx/.mm -> MatrixMarket, .spb/.bin ->
/// binary, everything else edge list.
GraphFormat format_from_extension(const std::string& path);

/// Sniffs the file content (SPARBIN magic, %%MatrixMarket banner), falling
/// back to the extension for plain text.
GraphFormat detect_format(const std::string& path);

const char* format_name(GraphFormat f);

Graph load_graph(const std::string& path);                   ///< detect_format
Graph load_graph(const std::string& path, GraphFormat f);
void save_graph(const std::string& path, const Graph& g);    ///< by extension
void save_graph(const std::string& path, const Graph& g, GraphFormat f);

}  // namespace spar::graph
