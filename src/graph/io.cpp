#include "graph/io.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <iomanip>
#include <istream>
#include <limits>
#include <memory>
#include <ostream>
#include <sstream>
#include <tuple>
#include <vector>

#include "graph/io_binary.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::graph {

namespace par = support::par;

namespace {

// --- token scanning (std::from_chars; no locales, no streams) --------------

bool is_hspace(char c) {
  return c == ' ' || c == '\t' || c == '\r' || c == '\v' || c == '\f';
}

const char* skip_hspace(const char* p, const char* end) {
  while (p < end && is_hspace(*p)) ++p;
  return p;
}

std::string_view trimmed(std::string_view line) {
  std::size_t b = 0, e = line.size();
  while (b < e && is_hspace(line[b])) ++b;
  while (e > b && is_hspace(line[e - 1])) --e;
  return line.substr(b, e - b);
}

bool is_content_line(std::string_view line, char comment) {
  const std::string_view t = trimmed(line);
  return !t.empty() && t[0] != comment;
}

bool parse_u64(const char*& p, const char* end, std::uint64_t& out) {
  p = skip_hspace(p, end);
  const auto [next, ec] = std::from_chars(p, end, out);
  if (ec != std::errc{} || next == p) return false;
  p = next;
  return true;
}

bool parse_f64(const char*& p, const char* end, double& out) {
  p = skip_hspace(p, end);
  const auto [next, ec] = std::from_chars(p, end, out);
  if (ec != std::errc{} || next == p) return false;
  p = next;
  return true;
}

bool at_line_end(const char* p, const char* end) { return skip_hspace(p, end) == end; }

// --- chunked line-parallel scanning ----------------------------------------

/// First index s in [pos, len] that starts a line (s == 0 or body[s-1] is \n).
std::size_t line_start_at_or_after(std::string_view body, std::size_t pos) {
  if (pos == 0) return 0;
  if (pos >= body.size()) return body.size();
  if (body[pos - 1] == '\n') return pos;
  const std::size_t nl = body.find('\n', pos);
  return nl == std::string_view::npos ? body.size() : nl + 1;
}

/// Calls f(line) for every line whose first character lies in [from, to).
/// [from, to) are raw byte bounds; a line straddling `to` still belongs to
/// this range, a line straddling `from` belongs to the previous one. Byte
/// bounds therefore induce an exact partition of the lines.
template <typename F>
void for_each_line_in(std::string_view body, std::size_t from, std::size_t to, F&& f) {
  std::size_t s = line_start_at_or_after(body, from);
  to = std::min(to, body.size());
  while (s < to) {
    std::size_t e = body.find('\n', s);
    if (e == std::string_view::npos) e = body.size();
    f(body.substr(s, e - s));
    s = e + 1;
  }
}

struct LineError {
  std::size_t line = 0;  // 1-based; 0 = no error
  std::string what;
};

[[noreturn]] void throw_at_line(const std::string& who, std::size_t line,
                                const std::string& what) {
  throw spar::Error(who + ": line " + std::to_string(line) + ": " + what);
}

constexpr std::size_t kNoExpectedEntries = std::numeric_limits<std::size_t>::max();

bool parse_header_counts(std::string_view header, std::uint64_t& n, std::uint64_t& m) {
  const char* p = header.data();
  const char* end = header.data() + header.size();
  return parse_u64(p, end, n) && parse_u64(p, end, m) && at_line_end(p, end);
}

/// Two-pass chunk-parallel parse of edge-list body lines into `arena` (resized
/// to the entry count found). Line numbers in errors are 1-based file lines
/// (`body_first_line` anchors them), so the whole-file reader and the batched
/// text stream diagnose identically. When `expected_entries` is not
/// kNoExpectedEntries, a count mismatch is reported between the passes --
/// before any per-line error -- matching the historical reader's precedence.
std::size_t parse_edge_body(std::string_view body, std::size_t body_first_line,
                            std::uint64_t n, std::size_t expected_entries,
                            EdgeArena& arena, const char* who) {
  // Chunk boundaries are raw byte offsets snapped to line starts inside
  // for_each_line_in -- a pure function of (body length, grain), never of the
  // thread count, so entry ranks (= edge ids) are deterministic.
  const auto len = static_cast<std::int64_t>(body.size());
  const std::int64_t grain = std::max<std::int64_t>(par::default_grain(len), 1 << 14);
  const auto chunks = static_cast<std::size_t>(len > 0 ? (len + grain - 1) / grain : 0);

  // Pass 1: count lines and entries per chunk.
  std::vector<std::size_t> chunk_lines(chunks, 0), chunk_entries(chunks, 0);
  par::parallel_chunks(
      0, static_cast<std::int64_t>(chunks),
      [&](std::int64_t cb, std::int64_t ce, std::int64_t, int) {
        for (std::int64_t c = cb; c < ce; ++c) {
          std::size_t lines = 0, entries = 0;
          for_each_line_in(body, static_cast<std::size_t>(c * grain),
                           static_cast<std::size_t>((c + 1) * grain),
                           [&](std::string_view line) {
                             ++lines;
                             if (is_content_line(line, '#')) ++entries;
                           });
          chunk_lines[static_cast<std::size_t>(c)] = lines;
          chunk_entries[static_cast<std::size_t>(c)] = entries;
        }
      },
      {.grain = 1});

  // Exclusive prefix sums (chunk order, serial: determinism anchor).
  std::vector<std::size_t> line_base(chunks, 0), entry_base(chunks, 0);
  std::size_t total_entries = 0, total_lines = 0;
  for (std::size_t c = 0; c < chunks; ++c) {
    line_base[c] = total_lines;
    entry_base[c] = total_entries;
    total_lines += chunk_lines[c];
    total_entries += chunk_entries[c];
  }
  if (expected_entries != kNoExpectedEntries && total_entries != expected_entries)
    throw spar::Error(std::string(who) + ": expected " +
                      std::to_string(expected_entries) + " edges, found " +
                      std::to_string(total_entries) +
                      (total_entries < expected_entries ? " (truncated edge list)"
                                                        : " (trailing data)"));

  // Pass 2: parse every entry straight into the arena at its global rank.
  arena.resize(static_cast<Vertex>(n), total_entries);
  auto out_u = arena.mutable_u();
  auto out_v = arena.mutable_v();
  auto out_w = arena.weights();
  std::vector<LineError> chunk_error(chunks);
  par::parallel_chunks(
      0, static_cast<std::int64_t>(chunks),
      [&](std::int64_t cb, std::int64_t ce, std::int64_t, int) {
        for (std::int64_t c = cb; c < ce; ++c) {
          const auto ci = static_cast<std::size_t>(c);
          std::size_t line = body_first_line + line_base[ci];
          std::size_t at = entry_base[ci];
          LineError& err = chunk_error[ci];
          for_each_line_in(
              body, static_cast<std::size_t>(c * grain),
              static_cast<std::size_t>((c + 1) * grain), [&](std::string_view lv) {
                const std::size_t this_line = line++;
                if (err.line || !is_content_line(lv, '#')) return;
                const char* p = lv.data();
                const char* end = lv.data() + lv.size();
                std::uint64_t u = 0, v = 0;
                double w = 1.0;
                if (!parse_u64(p, end, u) || !parse_u64(p, end, v)) {
                  err = {this_line, "bad edge row (want \"<u> <v> [w]\")"};
                  return;
                }
                if (!at_line_end(p, end) && !parse_f64(p, end, w)) {
                  err = {this_line, "malformed weight"};
                  return;
                }
                if (!at_line_end(p, end)) {
                  err = {this_line, "trailing characters after edge row"};
                  return;
                }
                if (u >= n || v >= n) {
                  err = {this_line, "endpoint out of range (n = " + std::to_string(n) + ")"};
                  return;
                }
                if (u == v) {
                  err = {this_line, "self-loop not allowed"};
                  return;
                }
                if (!(w > 0.0) || !std::isfinite(w)) {
                  err = {this_line, "weight must be positive and finite"};
                  return;
                }
                out_u[at] = static_cast<Vertex>(u);
                out_v[at] = static_cast<Vertex>(v);
                out_w[at] = w;
                ++at;
              });
        }
      },
      {.grain = 1});

  const auto bad = std::min_element(
      chunk_error.begin(), chunk_error.end(), [](const LineError& a, const LineError& b) {
        if ((a.line == 0) != (b.line == 0)) return a.line != 0;
        return a.line < b.line;
      });
  if (bad != chunk_error.end() && bad->line != 0)
    throw_at_line(who, bad->line, bad->what);
  return total_entries;
}

std::string read_file_to_string(const std::string& path, const char* who) {
  std::ifstream in(path, std::ios::binary);
  SPAR_CHECK(in.good(), std::string(who) + ": cannot open " + path);
  in.seekg(0, std::ios::end);
  const auto len = in.tellg();
  SPAR_CHECK(len >= 0, std::string(who) + ": cannot stat " + path);
  std::string buf(static_cast<std::size_t>(len), '\0');
  in.seekg(0);
  in.read(buf.data(), len);
  // A short read (file truncated between the size query and the read) sets
  // failbit, not badbit; without the gcount check the NUL-padded tail would
  // surface as a bogus parse error at a phantom line.
  SPAR_CHECK(!in.bad() && in.gcount() == len,
             std::string(who) + ": read failed for " + path);
  return buf;
}

}  // namespace

// ---------------------------------------------------------------------------
// Edge lists

void write_edge_list(std::ostream& out, const Graph& g) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

void parse_edge_list(std::string_view text, EdgeArena& arena) {
  constexpr const char* kWho = "read_edge_list";

  // Header: first content line, "#" comments and blank lines before it.
  std::size_t pos = 0;
  std::size_t line_no = 0;
  std::string_view header;
  while (pos < text.size()) {
    std::size_t e = text.find('\n', pos);
    if (e == std::string_view::npos) e = text.size();
    const std::string_view line = text.substr(pos, e - pos);
    ++line_no;
    pos = e + 1;
    if (is_content_line(line, '#')) {
      header = line;
      break;
    }
  }
  SPAR_CHECK(!header.empty(), std::string(kWho) + ": empty input");

  std::uint64_t n = 0, m = 0;
  if (!parse_header_counts(header, n, m))
    throw_at_line(kWho, line_no, "bad header (want \"<num_vertices> <num_edges>\")");
  SPAR_CHECK(n <= std::numeric_limits<Vertex>::max(),
             std::string(kWho) + ": vertex count exceeds 32-bit vertex ids");
  const std::size_t body_first_line = line_no + 1;
  const std::string_view body =
      pos <= text.size() ? text.substr(std::min(pos, text.size())) : std::string_view{};

  parse_edge_body(body, body_first_line, n, static_cast<std::size_t>(m), arena, kWho);
}

Graph read_edge_list(std::istream& in) {
  std::ostringstream buf;
  buf << in.rdbuf();
  EdgeArena arena;
  parse_edge_list(buf.view(), arena);
  return arena.to_graph();
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  SPAR_CHECK(out.good(), "save_edge_list: cannot open " + path);
  write_edge_list(out, g);
  SPAR_CHECK(out.good(), "save_edge_list: write failed for " + path);
}

void load_edge_list(const std::string& path, EdgeArena& arena) {
  const std::string text = read_file_to_string(path, "load_edge_list");
  parse_edge_list(text, arena);
}

Graph load_edge_list(const std::string& path) {
  EdgeArena arena;
  load_edge_list(path, arena);
  return arena.to_graph();
}

// ---------------------------------------------------------------------------
// Batched edge streams

std::size_t MemoryEdgeStream::next_batch(EdgeArena& out, std::size_t max_edges) {
  SPAR_CHECK(max_edges > 0, "MemoryEdgeStream: max_edges must be positive");
  const std::size_t k = std::min(max_edges, view_.size - cursor_);
  if (k == 0) return 0;
  out.resize(view_.num_vertices, 0);
  out.append(view_.slab(cursor_, cursor_ + k));
  cursor_ += k;
  return k;
}

struct TextEdgeStream::Impl {
  std::ifstream in;
  std::uint64_t n = 0;
  std::uint64_t m = 0;
  std::size_t line_no = 0;  ///< 1-based number of the last line consumed
  std::size_t served = 0;   ///< entries handed out so far
  std::string line;         ///< getline scratch
  std::string block;        ///< accumulated batch text (reused)
};

TextEdgeStream::TextEdgeStream(const std::string& path)
    : impl_(std::make_unique<Impl>()) {
  constexpr const char* kWho = "stream_edge_list";
  Impl& s = *impl_;
  s.in.open(path, std::ios::binary);
  SPAR_CHECK(s.in.good(), std::string(kWho) + ": cannot open " + path);
  // Header: first content line; "#" comments and blank lines before it.
  bool have_header = false;
  while (std::getline(s.in, s.line)) {
    ++s.line_no;
    if (is_content_line(s.line, '#')) {
      have_header = true;
      break;
    }
  }
  SPAR_CHECK(have_header, std::string(kWho) + ": empty input");
  if (!parse_header_counts(s.line, s.n, s.m))
    throw_at_line(kWho, s.line_no, "bad header (want \"<num_vertices> <num_edges>\")");
  SPAR_CHECK(s.n <= std::numeric_limits<Vertex>::max(),
             std::string(kWho) + ": vertex count exceeds 32-bit vertex ids");
}

TextEdgeStream::~TextEdgeStream() = default;

Vertex TextEdgeStream::num_vertices() const { return static_cast<Vertex>(impl_->n); }
std::size_t TextEdgeStream::num_edges() const {
  return static_cast<std::size_t>(impl_->m);
}

std::size_t TextEdgeStream::next_batch(EdgeArena& out, std::size_t max_edges) {
  constexpr const char* kWho = "stream_edge_list";
  SPAR_CHECK(max_edges > 0, std::string(kWho) + ": max_edges must be positive");
  Impl& s = *impl_;

  if (s.served == s.m) {
    // Drain the tail: anything but comments and blanks is trailing data.
    while (std::getline(s.in, s.line)) {
      ++s.line_no;
      if (is_content_line(s.line, '#'))
        throw_at_line(kWho, s.line_no,
                      "trailing data after the declared " + std::to_string(s.m) +
                          " edges");
    }
    return 0;
  }

  // Accumulate raw lines until the block holds max_edges entries (or EOF),
  // then hand the block to the same chunk-parallel body parser the whole-file
  // reader uses. Batch boundaries count content lines only, so they are a
  // pure function of (file, batch size).
  s.block.clear();
  const std::size_t first_line = s.line_no + 1;
  std::size_t content = 0;
  while (content < max_edges && std::getline(s.in, s.line)) {
    ++s.line_no;
    s.block += s.line;
    s.block += '\n';
    if (is_content_line(s.line, '#')) ++content;
  }
  if (s.served + content < s.m && content < max_edges)
    throw spar::Error(std::string(kWho) + ": expected " + std::to_string(s.m) +
                      " edges, found " + std::to_string(s.served + content) +
                      " (truncated edge list)");
  if (s.served + content > s.m)
    throw spar::Error(std::string(kWho) + ": expected " + std::to_string(s.m) +
                      " edges, found at least " + std::to_string(s.served + content) +
                      " (trailing data)");

  const std::size_t got = parse_edge_body(s.block, first_line, s.n, content, out, kWho);
  s.served += got;
  return got;
}

std::unique_ptr<EdgeStream> open_edge_stream(const std::string& path) {
  switch (detect_format(path)) {
    case GraphFormat::kBinary:
      return std::make_unique<BinaryEdgeStream>(path);
    case GraphFormat::kEdgeList:
      return std::make_unique<TextEdgeStream>(path);
    case GraphFormat::kMatrixMarket:
      // MatrixMarket needs whole-file symmetry reconciliation; load it once
      // and serve batches from memory.
      return std::make_unique<MemoryEdgeStream>(EdgeArena(load_matrix_market(path)));
  }
  throw spar::Error("open_edge_stream: unknown format");
}

// ---------------------------------------------------------------------------
// MatrixMarket

void write_matrix_market(std::ostream& out, const Graph& g) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% weighted adjacency matrix written by libspar\n";
  const Graph c = g.coalesced();  // a matrix entry is unique; merge multi-edges
  out << c.num_vertices() << ' ' << c.num_vertices() << ' ' << c.num_edges() << '\n';
  for (const Edge& e : c.edges()) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    out << (hi + 1) << ' ' << (lo + 1) << ' ' << e.w << '\n';  // lower triangle, 1-based
  }
}

namespace {

std::string lowercase(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

struct MmEntry {
  Vertex lo = 0, hi = 0;
  double w = 1.0;
  std::size_t line = 0;  // 1-based source line, for error messages
  bool upper = false;    // r < c in the file (orientation before canonicalizing)
  bool drop = false;     // merged-away mirror of an earlier entry
};

}  // namespace

Graph read_matrix_market(std::istream& in, MatrixMarketInfo* info) {
  constexpr const char* kWho = "read_matrix_market";
  std::string line;
  std::size_t line_no = 0;
  auto next_line = [&]() -> bool {
    if (!std::getline(in, line)) return false;
    ++line_no;
    return true;
  };

  // Banner: %%MatrixMarket <object> <format> <field> <symmetry>
  SPAR_CHECK(next_line(), std::string(kWho) + ": empty input");
  SPAR_CHECK(line.rfind("%%MatrixMarket", 0) == 0, std::string(kWho) + ": missing banner");
  std::istringstream banner(line);
  std::string tag, object, format, field, symmetry;
  banner >> tag >> object >> format >> field >> symmetry;
  object = lowercase(object);
  format = lowercase(format);
  field = lowercase(field);
  symmetry = lowercase(symmetry);
  SPAR_CHECK(object == "matrix", std::string(kWho) + ": unsupported object \"" + object + "\"");
  SPAR_CHECK(format == "coordinate",
             std::string(kWho) + ": only coordinate format supported");
  SPAR_CHECK(field == "real" || field == "integer" || field == "pattern",
             std::string(kWho) + ": unsupported field \"" + field +
                 "\" (want real, integer or pattern)");
  SPAR_CHECK(symmetry == "general" || symmetry == "symmetric",
             std::string(kWho) + ": unsupported symmetry \"" + symmetry +
                 "\" (want general or symmetric)");
  const bool pattern = field == "pattern";
  const bool symmetric = symmetry == "symmetric";

  // Size line: first content line after the banner.
  bool have_sizes = false;
  while (next_line()) {
    if (is_content_line(line, '%')) {
      have_sizes = true;
      break;
    }
  }
  SPAR_CHECK(have_sizes, std::string(kWho) + ": missing size line");
  std::uint64_t rows = 0, cols = 0, nnz = 0;
  {
    const char* p = line.data();
    const char* end = line.data() + line.size();
    if (!parse_u64(p, end, rows) || !parse_u64(p, end, cols) ||
        !parse_u64(p, end, nnz) || !at_line_end(p, end))
      throw_at_line(kWho, line_no, "bad size line (want \"<rows> <cols> <nnz>\")");
  }
  SPAR_CHECK(rows == cols, std::string(kWho) + ": matrix must be square");
  SPAR_CHECK(rows <= std::numeric_limits<Vertex>::max(),
             std::string(kWho) + ": dimension exceeds 32-bit vertex ids");

  MatrixMarketInfo stats;
  stats.field = field;
  stats.symmetry = symmetry;

  // Entry body: blank lines and %-comments are permitted between entries.
  std::vector<MmEntry> entries;
  // nnz is untrusted; cap the pre-reserve so a hostile size line cannot turn
  // into std::length_error before the (line-numbered) body errors can fire.
  entries.reserve(static_cast<std::size_t>(std::min<std::uint64_t>(nnz, 1 << 20)));
  while (stats.entries < nnz) {
    if (!next_line())
      throw spar::Error(std::string(kWho) + ": truncated: expected " +
                        std::to_string(nnz) + " entries, found " +
                        std::to_string(stats.entries));
    if (!is_content_line(line, '%')) continue;
    const char* p = line.data();
    const char* end = line.data() + line.size();
    std::uint64_t r = 0, c = 0;
    if (!parse_u64(p, end, r) || !parse_u64(p, end, c))
      throw_at_line(kWho, line_no, "bad entry (want \"<row> <col>" +
                                       std::string(pattern ? "" : " <value>") + "\")");
    if (r < 1 || r > rows || c < 1 || c > rows)
      throw_at_line(kWho, line_no,
                    "index out of range: (" + std::to_string(r) + ", " +
                        std::to_string(c) + ") not in [1, " + std::to_string(rows) +
                        "]^2 (MatrixMarket indices are 1-based)");
    double w = 1.0;
    if (!pattern) {
      // A real/integer file must carry a value; defaulting a missing one to
      // 1.0 silently mislabels malformed files, so it is an error here.
      if (!parse_f64(p, end, w))
        throw_at_line(kWho, line_no, "missing or malformed value (field \"" + field +
                                         "\"; only pattern files omit values)");
      if (!std::isfinite(w)) throw_at_line(kWho, line_no, "value must be finite");
    }
    if (!at_line_end(p, end))
      throw_at_line(kWho, line_no, "trailing characters after entry");
    ++stats.entries;
    if (symmetric && r < c)
      throw_at_line(kWho, line_no,
                    "upper-triangle entry in a symmetric file (want row >= col)");
    if (r == c) {
      ++stats.diagonal_dropped;  // diagonal carries no edge
      continue;
    }
    if (w == 0.0) {
      ++stats.zero_dropped;  // an explicit zero is a non-edge
      continue;
    }
    if (w < 0.0) {
      // Laplacian off-diagonal convention: the entry -w encodes an edge of
      // weight w. Recorded (and logged below) instead of silently flipped.
      w = -w;
      ++stats.negative_flipped;
    }
    MmEntry e;
    e.lo = static_cast<Vertex>(std::min(r, c) - 1);
    e.hi = static_cast<Vertex>(std::max(r, c) - 1);
    e.w = w;
    e.line = line_no;
    e.upper = r < c;
    entries.push_back(e);
  }
  while (next_line()) {
    if (is_content_line(line, '%'))
      throw_at_line(kWho, line_no, "trailing data after the declared " +
                                       std::to_string(nnz) + " entries");
  }

  // Symmetry semantics. In a `general` file both (i,j) and (j,i) may appear:
  // a mirrored pair with equal values is one edge (the old reader's blanket
  // coalesce() summed them, doubling every weight). Same-orientation
  // duplicates, mismatched mirrors, and any duplicate in a `symmetric` file
  // are rejected -- a coordinate matrix lists each entry once.
  std::vector<std::size_t> order(entries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return std::tie(entries[a].lo, entries[a].hi, entries[a].line) <
           std::tie(entries[b].lo, entries[b].hi, entries[b].line);
  });
  for (std::size_t i = 0; i + 1 < order.size(); ++i) {
    MmEntry& a = entries[order[i]];
    MmEntry& b = entries[order[i + 1]];
    if (a.lo != b.lo || a.hi != b.hi) continue;
    if (a.drop || symmetric || a.upper == b.upper)
      throw_at_line(kWho, b.line,
                    "duplicate entry for (" + std::to_string(b.hi + 1) + ", " +
                        std::to_string(b.lo + 1) + "), first at line " +
                        std::to_string(a.line));
    if (a.w != b.w)
      throw_at_line(kWho, b.line,
                    "mirrored entries disagree: (" + std::to_string(a.hi + 1) + ", " +
                        std::to_string(a.lo + 1) + ") has value " + std::to_string(a.w) +
                        " at line " + std::to_string(a.line) + " but " +
                        std::to_string(b.w) + " here");
    b.drop = true;
    ++stats.mirrored_merged;
  }

  Graph g(static_cast<Vertex>(rows));
  g.reserve(entries.size() - stats.mirrored_merged);
  for (const MmEntry& e : entries)
    if (!e.drop) g.add_edge(e.lo, e.hi, e.w);

  if (stats.negative_flipped > 0 && info == nullptr)
    std::fprintf(stderr,
                 "%s: warning: %zu negative value(s) stored as |w| "
                 "(Laplacian off-diagonal convention)\n",
                 kWho, stats.negative_flipped);
  if (info) *info = stats;
  return g;
}

void save_matrix_market(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  SPAR_CHECK(out.good(), "save_matrix_market: cannot open " + path);
  write_matrix_market(out, g);
  SPAR_CHECK(out.good(), "save_matrix_market: write failed for " + path);
}

Graph load_matrix_market(const std::string& path, MatrixMarketInfo* info) {
  std::ifstream in(path);
  SPAR_CHECK(in.good(), "load_matrix_market: cannot open " + path);
  return read_matrix_market(in, info);
}

// ---------------------------------------------------------------------------
// Format dispatch

GraphFormat format_from_extension(const std::string& path) {
  const auto dot = path.find_last_of('.');
  const auto slash = path.find_last_of('/');
  if (dot == std::string::npos || (slash != std::string::npos && dot < slash))
    return GraphFormat::kEdgeList;
  const std::string ext = lowercase(std::string_view(path).substr(dot + 1));
  if (ext == "mtx" || ext == "mm") return GraphFormat::kMatrixMarket;
  if (ext == "spb" || ext == "bin") return GraphFormat::kBinary;
  return GraphFormat::kEdgeList;
}

GraphFormat detect_format(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SPAR_CHECK(in.good(), "detect_format: cannot open " + path);
  char buf[14] = {};
  in.read(buf, sizeof(buf));
  const auto got = static_cast<std::size_t>(in.gcount());
  if (got >= sizeof(kBinaryMagic) &&
      std::char_traits<char>::compare(buf, kBinaryMagic, sizeof(kBinaryMagic)) == 0)
    return GraphFormat::kBinary;
  if (std::string_view(buf, got).rfind("%%MatrixMarket", 0) == 0)
    return GraphFormat::kMatrixMarket;
  return format_from_extension(path);
}

const char* format_name(GraphFormat f) {
  switch (f) {
    case GraphFormat::kEdgeList: return "edge-list";
    case GraphFormat::kMatrixMarket: return "matrix-market";
    case GraphFormat::kBinary: return "binary";
  }
  return "?";
}

Graph load_graph(const std::string& path, GraphFormat f) {
  switch (f) {
    case GraphFormat::kEdgeList: return load_edge_list(path);
    case GraphFormat::kMatrixMarket: return load_matrix_market(path);
    case GraphFormat::kBinary: return load_binary(path);
  }
  throw spar::Error("load_graph: unknown format");
}

Graph load_graph(const std::string& path) { return load_graph(path, detect_format(path)); }

void save_graph(const std::string& path, const Graph& g, GraphFormat f) {
  switch (f) {
    case GraphFormat::kEdgeList: return save_edge_list(path, g);
    case GraphFormat::kMatrixMarket: return save_matrix_market(path, g);
    case GraphFormat::kBinary: return save_binary(path, g);
  }
  throw spar::Error("save_graph: unknown format");
}

void save_graph(const std::string& path, const Graph& g) {
  save_graph(path, g, format_from_extension(path));
}

}  // namespace spar::graph
