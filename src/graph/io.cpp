#include "graph/io.hpp"

#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>

#include "support/assert.hpp"

namespace spar::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) out << e.u << ' ' << e.v << ' ' << e.w << '\n';
}

Graph read_edge_list(std::istream& in) {
  std::string line;
  auto next_content_line = [&]() -> bool {
    while (std::getline(in, line)) {
      if (!line.empty() && line[0] != '#') return true;
    }
    return false;
  };
  SPAR_CHECK(next_content_line(), "read_edge_list: empty input");
  std::istringstream header(line);
  std::size_t n = 0, m = 0;
  SPAR_CHECK(static_cast<bool>(header >> n >> m), "read_edge_list: bad header");
  Graph g(static_cast<Vertex>(n));
  g.reserve(m);
  for (std::size_t i = 0; i < m; ++i) {
    SPAR_CHECK(next_content_line(), "read_edge_list: truncated edge list");
    std::istringstream row(line);
    Vertex u = 0, v = 0;
    double w = 1.0;
    SPAR_CHECK(static_cast<bool>(row >> u >> v), "read_edge_list: bad edge row");
    row >> w;
    g.add_edge(u, v, w);
  }
  return g;
}

void save_edge_list(const std::string& path, const Graph& g) {
  std::ofstream out(path);
  SPAR_CHECK(out.good(), "save_edge_list: cannot open " + path);
  write_edge_list(out, g);
}

Graph load_edge_list(const std::string& path) {
  std::ifstream in(path);
  SPAR_CHECK(in.good(), "load_edge_list: cannot open " + path);
  return read_edge_list(in);
}

void write_matrix_market(std::ostream& out, const Graph& g) {
  out << std::setprecision(std::numeric_limits<double>::max_digits10);
  out << "%%MatrixMarket matrix coordinate real symmetric\n";
  out << "% weighted adjacency matrix written by libspar\n";
  out << g.num_vertices() << ' ' << g.num_vertices() << ' ' << g.num_edges() << '\n';
  for (const Edge& e : g.edges()) {
    const Vertex lo = std::min(e.u, e.v);
    const Vertex hi = std::max(e.u, e.v);
    out << (hi + 1) << ' ' << (lo + 1) << ' ' << e.w << '\n';  // lower triangle, 1-based
  }
}

Graph read_matrix_market(std::istream& in) {
  std::string line;
  SPAR_CHECK(static_cast<bool>(std::getline(in, line)), "read_matrix_market: empty input");
  SPAR_CHECK(line.rfind("%%MatrixMarket", 0) == 0, "read_matrix_market: missing banner");
  SPAR_CHECK(line.find("coordinate") != std::string::npos,
             "read_matrix_market: only coordinate format supported");
  while (std::getline(in, line)) {
    if (!line.empty() && line[0] != '%') break;
  }
  std::istringstream header(line);
  std::size_t rows = 0, cols = 0, nnz = 0;
  SPAR_CHECK(static_cast<bool>(header >> rows >> cols >> nnz), "read_matrix_market: bad sizes");
  SPAR_CHECK(rows == cols, "read_matrix_market: matrix must be square");
  Graph g(static_cast<Vertex>(rows));
  for (std::size_t i = 0; i < nnz; ++i) {
    SPAR_CHECK(static_cast<bool>(std::getline(in, line)), "read_matrix_market: truncated");
    std::istringstream row(line);
    std::size_t r = 0, c = 0;
    double w = 1.0;
    SPAR_CHECK(static_cast<bool>(row >> r >> c), "read_matrix_market: bad entry");
    row >> w;
    if (r == c) continue;  // diagonal carries no edge
    g.add_edge(static_cast<Vertex>(r - 1), static_cast<Vertex>(c - 1), std::abs(w));
  }
  return g.coalesced();
}

}  // namespace spar::graph
