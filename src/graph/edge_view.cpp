#include "graph/edge_view.hpp"

#include <cmath>
#include <string>
#include <utility>

#include "support/error.hpp"
#include "support/parallel.hpp"

namespace spar::graph {

namespace par = support::par;

void EdgeArena::assign(const Graph& g) {
  n_ = g.num_vertices();
  size_ = g.num_edges();
  u_.resize(size_);
  v_.resize(size_);
  w_.resize(size_);
  const auto edges = g.edges();
  par::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
    u_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].u;
    v_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].v;
    w_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].w;
  });
}

void EdgeArena::resize(Vertex n, std::size_t m) {
  n_ = n;
  size_ = m;
  u_.resize(m);
  v_.resize(m);
  w_.resize(m);
}

void EdgeArena::append(const EdgeView& view) {
  if (size_ == 0 && n_ == 0) {
    n_ = view.num_vertices;
  } else if (view.num_vertices != n_) {
    throw spar::Error("EdgeArena::append: vertex count mismatch (" +
                      std::to_string(view.num_vertices) + " vs " +
                      std::to_string(n_) + ")");
  }
  const std::size_t at = size_;
  resize(n_, size_ + view.size);
  par::parallel_for(0, static_cast<std::int64_t>(view.size), [&](std::int64_t i) {
    const auto id = static_cast<std::size_t>(i);
    u_[at + id] = view.u[id];
    v_[at + id] = view.v[id];
    w_[at + id] = view.w[id];
  });
}

void EdgeArena::release() {
  size_ = 0;
  u_ = {};
  v_ = {};
  w_ = {};
  next_u_ = {};
  next_v_ = {};
  next_w_ = {};
}

void EdgeArena::validate() const {
  const auto bad = [&](std::size_t i) {
    return u_[i] >= n_ || v_[i] >= n_ || u_[i] == v_[i] ||
           !(w_[i] > 0.0) || !std::isfinite(w_[i]);
  };
  const std::int64_t first_bad = par::parallel_reduce(
      0, static_cast<std::int64_t>(size_), std::int64_t{-1},
      [&](std::int64_t cb, std::int64_t ce) -> std::int64_t {
        for (std::int64_t i = cb; i < ce; ++i)
          if (bad(static_cast<std::size_t>(i))) return i;
        return -1;
      },
      [](std::int64_t a, std::int64_t b) { return a >= 0 ? a : b; });
  if (first_bad < 0) return;
  const auto i = static_cast<std::size_t>(first_bad);
  std::string what = "EdgeArena::validate: edge " + std::to_string(i);
  if (u_[i] >= n_ || v_[i] >= n_)
    what += ": endpoint out of range (n = " + std::to_string(n_) + ")";
  else if (u_[i] == v_[i])
    what += ": self-loop";
  else
    what += ": weight must be positive and finite";
  throw spar::Error(what);
}

Graph EdgeArena::to_graph() const {
  std::vector<Edge> edges(size_);
  par::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
    const auto id = static_cast<std::size_t>(i);
    edges[id] = {u_[id], v_[id], w_[id]};
  });
  return Graph(n_, std::move(edges));
}

std::size_t EdgeArena::compact_commit(std::size_t new_size) {
  u_.swap(next_u_);
  v_.swap(next_v_);
  w_.swap(next_w_);
  size_ = new_size;
  return size_;
}

double EdgeArena::total_weight() const {
  return par::parallel_sum(0, static_cast<std::int64_t>(size_),
                           [&](std::int64_t i) { return w_[static_cast<std::size_t>(i)]; });
}

}  // namespace spar::graph
