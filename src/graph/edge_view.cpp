#include "graph/edge_view.hpp"

#include <utility>

#include "support/parallel.hpp"

namespace spar::graph {

namespace par = support::par;

void EdgeArena::assign(const Graph& g) {
  n_ = g.num_vertices();
  size_ = g.num_edges();
  u_.resize(size_);
  v_.resize(size_);
  w_.resize(size_);
  const auto edges = g.edges();
  par::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
    u_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].u;
    v_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].v;
    w_[static_cast<std::size_t>(i)] = edges[static_cast<std::size_t>(i)].w;
  });
}

Graph EdgeArena::to_graph() const {
  std::vector<Edge> edges(size_);
  par::parallel_for(0, static_cast<std::int64_t>(size_), [&](std::int64_t i) {
    const auto id = static_cast<std::size_t>(i);
    edges[id] = {u_[id], v_[id], w_[id]};
  });
  return Graph(n_, std::move(edges));
}

std::size_t EdgeArena::compact_commit(std::size_t new_size) {
  u_.swap(next_u_);
  v_.swap(next_v_);
  w_.swap(next_w_);
  size_ = new_size;
  return size_;
}

double EdgeArena::total_weight() const {
  return par::parallel_sum(0, static_cast<std::int64_t>(size_),
                           [&](std::int64_t i) { return w_[static_cast<std::size_t>(i)]; });
}

}  // namespace spar::graph
