// SDD matrices as used by Section 4: M = D - A with A a nonnegative
// adjacency matrix and D >= rowsum(A) diagonally. Equivalently
// M = L(graph) + diag(slack) with slack >= 0. The class keeps the
// decomposition explicit because the Peng-Spielman reduction sparsifies the
// *graph part* and needs D and A separately for the chain identity
//   M^{-1} = 1/2 [ D^{-1} + (I + D^{-1}A)(D - A D^{-1} A)^{-1}(I + A D^{-1}) ].
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::solver {

class SDDMatrix {
 public:
  SDDMatrix() = default;

  /// Pure graph Laplacian (slack = 0; singular with nullspace span{1} per
  /// connected component).
  explicit SDDMatrix(graph::Graph laplacian_part);

  /// L(graph) + diag(slack); slack entries must be >= 0.
  SDDMatrix(graph::Graph laplacian_part, linalg::Vector slack);

  std::size_t dimension() const { return graph_.num_vertices(); }
  const graph::Graph& graph_part() const { return graph_; }
  const linalg::Vector& slack() const { return slack_; }

  /// Full diagonal D = weighted degree + slack.
  const linalg::Vector& diagonal() const { return diagonal_; }

  bool is_singular() const;  ///< true iff slack is identically zero

  /// y = M x  (matrix-free; OpenMP over the edge list + diagonal).
  void apply(std::span<const double> x, std::span<double> y) const;
  linalg::Vector apply(std::span<const double> x) const;

  /// x^T M x  (exact, nonnegative).
  double quadratic_form(std::span<const double> x) const;

  /// Adjacency part A as CSR (positive entries).
  linalg::CSRMatrix adjacency_csr() const;

  /// Explicit CSR of M itself (for tests / external tools).
  linalg::CSRMatrix to_csr() const;

  std::size_t nnz() const { return 2 * graph_.num_edges() + dimension(); }

 private:
  graph::Graph graph_;
  linalg::Vector slack_;
  linalg::Vector diagonal_;
};

}  // namespace spar::solver
