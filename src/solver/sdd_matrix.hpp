// SDD matrices as used by Section 4: M = D - A with A a nonnegative
// adjacency matrix and D >= rowsum(A) diagonally. Equivalently
// M = L(graph) + diag(slack) with slack >= 0. The class keeps the
// decomposition explicit because the Peng-Spielman reduction sparsifies the
// *graph part* and needs D and A separately for the chain identity
//   M^{-1} = 1/2 [ D^{-1} + (I + D^{-1}A)(D - A D^{-1} A)^{-1}(I + A D^{-1}) ].
#pragma once

#include <span>

#include "graph/graph.hpp"
#include "linalg/csr_matrix.hpp"
#include "linalg/operator.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::solver {

/// M = L(graph) + diag(slack) with the two parts kept separate (see the
/// header comment: the chain identity needs D and A individually).
class SDDMatrix {
 public:
  /// Empty matrix (dimension 0); assign a real one before use.
  SDDMatrix() = default;

  /// Pure graph Laplacian (slack = 0; singular with nullspace span{1} per
  /// connected component).
  explicit SDDMatrix(graph::Graph laplacian_part);

  /// L(graph) + diag(slack); slack entries must be >= 0.
  SDDMatrix(graph::Graph laplacian_part, linalg::Vector slack);

  /// Number of rows/columns n (= vertices of the graph part).
  std::size_t dimension() const { return graph_.num_vertices(); }
  /// The Laplacian part's graph (what the chain sparsifies between levels).
  const graph::Graph& graph_part() const { return graph_; }
  /// The nonnegative diagonal slack s (all zero iff the matrix is singular).
  const linalg::Vector& slack() const { return slack_; }

  /// Full diagonal D = weighted degree + slack.
  const linalg::Vector& diagonal() const { return diagonal_; }

  bool is_singular() const;  ///< true iff slack is identically zero

  /// y = M x  (matrix-free; OpenMP over the edge list + diagonal).
  void apply(std::span<const double> x, std::span<double> y) const;
  /// Allocating overload of apply(): returns M x as a fresh vector.
  linalg::Vector apply(std::span<const double> x) const;

  /// Y = M X column by column. Each column goes through the scalar apply(),
  /// so per-column results are bit-identical to single-vector applies (the
  /// blocked-solve determinism contract).
  void apply(const linalg::MultiVector& x, linalg::MultiVector& y) const;

  /// M as a LinearOperator (for conjugate_gradient / preconditioned_cg).
  linalg::LinearOperator as_operator() const;

  /// M as a blocked operator (for blocked_pcg / solve_sdd_multi).
  linalg::BlockOperator as_block_operator() const;

  /// x^T M x  (exact, nonnegative).
  double quadratic_form(std::span<const double> x) const;

  /// Adjacency part A as CSR (positive entries).
  linalg::CSRMatrix adjacency_csr() const;

  /// Explicit CSR of M itself (for tests / external tools).
  linalg::CSRMatrix to_csr() const;

  /// Stored nonzeros of the explicit form (two per edge plus the diagonal).
  std::size_t nnz() const { return 2 * graph_.num_edges() + dimension(); }

 private:
  graph::Graph graph_;
  linalg::Vector slack_;
  linalg::Vector diagonal_;
};

}  // namespace spar::solver
