#include "solver/multigrid.hpp"

#include <cmath>

#include "linalg/cg.hpp"
#include "support/assert.hpp"

namespace spar::solver {

using linalg::CSRMatrix;
using linalg::Triplet;
using linalg::Vector;

namespace {

// Bilinear prolongation from a coarse ceil(r/2) x ceil(c/2) grid onto the
// fine r x c grid; coarse point (i, j) sits at fine point (2i, 2j).
CSRMatrix bilinear_prolongation(std::size_t rows, std::size_t cols) {
  const std::size_t crows = (rows + 1) / 2;
  const std::size_t ccols = (cols + 1) / 2;
  std::vector<Triplet> t;
  t.reserve(rows * cols * 4);
  auto coarse_id = [&](std::size_t i, std::size_t j) {
    return static_cast<std::uint32_t>(i * ccols + j);
  };
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      const auto fine = static_cast<std::uint32_t>(r * cols + c);
      const std::size_t i = r / 2;
      const std::size_t j = c / 2;
      const bool r_odd = (r % 2) != 0;
      const bool c_odd = (c % 2) != 0;
      const bool has_down = i + 1 < crows;
      const bool has_right = j + 1 < ccols;
      if (!r_odd && !c_odd) {
        t.push_back({fine, coarse_id(i, j), 1.0});
      } else if (r_odd && !c_odd) {
        if (has_down) {
          t.push_back({fine, coarse_id(i, j), 0.5});
          t.push_back({fine, coarse_id(i + 1, j), 0.5});
        } else {
          t.push_back({fine, coarse_id(i, j), 1.0});
        }
      } else if (!r_odd && c_odd) {
        if (has_right) {
          t.push_back({fine, coarse_id(i, j), 0.5});
          t.push_back({fine, coarse_id(i, j + 1), 0.5});
        } else {
          t.push_back({fine, coarse_id(i, j), 1.0});
        }
      } else {
        if (has_down && has_right) {
          t.push_back({fine, coarse_id(i, j), 0.25});
          t.push_back({fine, coarse_id(i + 1, j), 0.25});
          t.push_back({fine, coarse_id(i, j + 1), 0.25});
          t.push_back({fine, coarse_id(i + 1, j + 1), 0.25});
        } else if (has_down) {
          t.push_back({fine, coarse_id(i, j), 0.5});
          t.push_back({fine, coarse_id(i + 1, j), 0.5});
        } else if (has_right) {
          t.push_back({fine, coarse_id(i, j), 0.5});
          t.push_back({fine, coarse_id(i, j + 1), 0.5});
        } else {
          t.push_back({fine, coarse_id(i, j), 1.0});
        }
      }
    }
  }
  return CSRMatrix::from_triplets(rows * cols, crows * ccols, std::move(t));
}

}  // namespace

GridMultigrid::GridMultigrid(const SDDMatrix& m, std::size_t rows, std::size_t cols,
                             const MultigridOptions& options)
    : options_(options), project_constant_(m.is_singular()) {
  SPAR_CHECK(rows * cols == m.dimension(),
             "GridMultigrid: rows * cols must equal the matrix dimension");
  SPAR_CHECK(rows >= 2 && cols >= 2, "GridMultigrid: grid too small");

  CSRMatrix a = m.to_csr();
  std::size_t r = rows;
  std::size_t c = cols;
  for (;;) {
    Level level;
    level.a = a;
    level.rows = r;
    level.cols = c;
    Vector diag = level.a.diagonal_vector();
    level.inv_diagonal.resize(diag.size());
    for (std::size_t i = 0; i < diag.size(); ++i) {
      SPAR_CHECK(diag[i] > 0.0, "GridMultigrid: nonpositive diagonal");
      level.inv_diagonal[i] = 1.0 / diag[i];
    }
    const bool coarsen = r > options_.min_side && c > options_.min_side;
    if (coarsen) {
      level.prolongation = bilinear_prolongation(r, c);
      // Galerkin coarse operator A_c = P^T A P.
      const CSRMatrix ap = a.multiply(level.prolongation);
      a = level.prolongation.transpose().multiply(ap);
      r = (r + 1) / 2;
      c = (c + 1) / 2;
    }
    levels_.push_back(std::move(level));
    if (!coarsen) break;
  }
}

std::size_t GridMultigrid::total_nnz() const {
  std::size_t total = 0;
  for (const Level& level : levels_) total += level.a.nnz();
  return total;
}

void GridMultigrid::smooth(const Level& level, std::span<const double> b,
                           std::span<double> x, std::size_t sweeps) const {
  const std::size_t n = b.size();
  Vector residual(n);
  for (std::size_t sweep = 0; sweep < sweeps; ++sweep) {
    level.a.multiply(x, residual);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += options_.jacobi_weight * level.inv_diagonal[i] * (b[i] - residual[i]);
  }
}

void GridMultigrid::cycle(std::size_t idx, std::span<const double> b,
                          std::span<double> x) const {
  const Level& level = levels_[idx];
  const std::size_t n = b.size();

  if (idx + 1 == levels_.size()) {
    // Coarsest: CG (tiny system; projection handles singular Laplacians).
    const linalg::LinearOperator op{
        n, [&level](std::span<const double> in, std::span<double> out) {
          level.a.multiply(in, out);
        }};
    linalg::CGOptions cg;
    cg.tolerance = options_.coarse_tolerance;
    cg.max_iterations = options_.coarse_max_iterations;
    cg.project_constant = project_constant_;
    linalg::conjugate_gradient(op, b, x, cg);
    return;
  }

  smooth(level, b, x, options_.pre_smooth);

  // Coarse-grid correction: restrict residual, recurse, prolong, add.
  Vector residual(n);
  level.a.multiply(x, residual);
  for (std::size_t i = 0; i < n; ++i) residual[i] = b[i] - residual[i];
  const std::size_t nc = level.prolongation.cols();
  Vector coarse_rhs(nc, 0.0);
  // restriction = P^T (the transpose-multiply): accumulate row-wise.
  {
    const auto offsets = level.prolongation.row_offsets();
    const auto cols_idx = level.prolongation.col_indices();
    const auto vals = level.prolongation.values();
    for (std::size_t row = 0; row < n; ++row)
      for (std::size_t k = offsets[row]; k < offsets[row + 1]; ++k)
        coarse_rhs[cols_idx[k]] += vals[k] * residual[row];
  }
  Vector coarse_x(nc, 0.0);
  cycle(idx + 1, coarse_rhs, coarse_x);
  Vector correction(n);
  level.prolongation.multiply(coarse_x, correction);
  for (std::size_t i = 0; i < n; ++i) x[i] += correction[i];

  smooth(level, b, x, options_.post_smooth);
  if (project_constant_ && idx == 0) linalg::remove_mean(x);
}

void GridMultigrid::v_cycle(std::span<const double> b, std::span<double> y) const {
  SPAR_CHECK(b.size() == levels_.front().a.rows() && y.size() == b.size(),
             "GridMultigrid::v_cycle: size mismatch");
  linalg::fill(y, 0.0);
  Vector rhs(b.begin(), b.end());
  if (project_constant_) linalg::remove_mean(rhs);
  cycle(0, rhs, y);
}

linalg::LinearOperator GridMultigrid::as_operator() const {
  return {levels_.front().a.rows(),
          [this](std::span<const double> b, std::span<double> y) { v_cycle(b, y); }};
}

MultigridSolveReport multigrid_solve(const SDDMatrix& m, std::size_t rows,
                                     std::size_t cols, std::span<const double> b,
                                     double tolerance, std::size_t max_iterations,
                                     const MultigridOptions& options) {
  const GridMultigrid mg(m, rows, cols, options);
  const linalg::LinearOperator a{
      m.dimension(), [&m](std::span<const double> x, std::span<double> y) {
        m.apply(x, y);
      }};
  Vector x(m.dimension(), 0.0);
  linalg::CGOptions cg;
  cg.tolerance = tolerance;
  cg.max_iterations = max_iterations;
  cg.project_constant = m.is_singular();
  const auto report = linalg::preconditioned_cg(a, mg.as_operator(), b, x, cg);

  MultigridSolveReport out;
  out.solution = std::move(x);
  out.iterations = report.iterations;
  out.relative_residual = report.relative_residual;
  out.converged = report.converged;
  out.levels = mg.num_levels();
  out.total_nnz = mg.total_nnz();
  return out;
}

}  // namespace spar::solver
