#include "solver/chain.hpp"

#include <algorithm>
#include <cmath>
#include <string>

#include "linalg/chebyshev.hpp"
#include "linalg/eigen_iterative.hpp"
#include "solver/squaring.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::solver {

using linalg::Vector;

InverseChain::InverseChain(SDDMatrix m, const ChainOptions& options) {
  tail_ = options.tail;
  jacobi_steps_ = options.last_level_jacobi_steps;
  chebyshev_steps_ = options.last_level_chebyshev_steps;
  project_constant_ = m.is_singular();

  SDDMatrix current = std::move(m);
  for (std::size_t level = 0; level < options.max_levels; ++level) {
    ChainLevelInfo info;
    info.edges = current.graph_part().num_edges();
    info.gamma = adjacency_dominance(current);

    Level stored;
    stored.matrix = current;
    stored.adjacency = current.adjacency_csr();
    const Vector& d = current.diagonal();
    stored.inv_diagonal.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      SPAR_CHECK(d[i] > 0.0, "InverseChain: zero diagonal");
      stored.inv_diagonal[i] = 1.0 / d[i];
    }
    levels_.push_back(std::move(stored));
    info_.push_back(info);

    // Termination: Jacobi handles the rest once off-diagonal mass is small.
    // Singular Laplacians keep gamma == 1 (the nullspace direction never
    // decays), so they terminate by max_levels / saturation instead; the
    // chain is then used as a PCG preconditioner with constant projection.
    if (info.gamma <= options.gamma_stop) break;
    if (current.graph_part().num_edges() == 0) break;

    // Pick the squaring path BEFORE committing product memory: the symbolic
    // fill projection is O(nnz) and is what both the guard and auto mode act
    // on. kStreamed needs no projection (square_streamed plans its own).
    std::size_t projected = 0;
    bool use_streamed = options.squaring == SquaringMode::kStreamed;
    if (options.squaring == SquaringMode::kAuto ||
        (options.squaring == SquaringMode::kDense && options.max_level_fill > 0)) {
      projected = projected_square_fill(current);
    }
    if (options.squaring == SquaringMode::kAuto) {
      std::size_t limit = options.streamed_fill_threshold;
      if (options.max_level_fill > 0) limit = std::min(limit, options.max_level_fill);
      use_streamed = projected > limit;
    } else if (options.squaring == SquaringMode::kDense &&
               options.max_level_fill > 0 && projected > options.max_level_fill) {
      throw spar::Error(
          "InverseChain: level " + std::to_string(level) + " square projects " +
          std::to_string(projected) + " product entries, over the max_level_fill "
          "budget of " + std::to_string(options.max_level_fill) +
          "; raise the budget or set ChainOptions::squaring = kStreamed/kAuto "
          "to build this level in bounded memory");
    }

    SquaringStats sq_stats;
    SDDMatrix squared;
    if (use_streamed) {
      // Fused sparsify-during-squaring: the tower spends this level's whole
      // eps budget internally (split across its passes), so the result is a
      // certified (1 +- level_epsilon) sparsifier of the exact square -- the
      // same contract as the dense square + posthoc sparsify below, without
      // the product ever being resident. No second sparsify pass follows.
      StreamedSquareOptions sqopt;
      sqopt.epsilon = options.level_epsilon;
      sqopt.rho = options.rho;
      sqopt.t = options.t;
      sqopt.seed = support::mix64(options.seed, level + 1);
      sqopt.batch_edges = options.stream_batch_edges;
      sqopt.max_resident_levels = options.stream_max_resident_levels;
      sqopt.block_fill_edges = options.stream_block_fill_edges;
      sqopt.work = options.work;
      squared = square_streamed(current, sqopt, &sq_stats);
    } else {
      squared = square(current, &sq_stats);
    }
    info_.back().edges_after_square = sq_stats.output_edges;
    info_.back().projected_fill = use_streamed ? sq_stats.projected_fill : projected;
    info_.back().streamed_square = use_streamed;
    info_.back().peak_resident_edges = sq_stats.peak_resident_edges;
    info_.back().sparsify_passes = sq_stats.sparsify_passes;
    info_.back().epsilon_budget_used = sq_stats.epsilon_budget_used;

    // Section 4: bring the level back toward its original size whenever it
    // exceeds the threshold of applicability m' = edge_factor * n. Streamed
    // levels come out of the tower already sparsified at this level's budget.
    const auto threshold = static_cast<std::size_t>(
        options.edge_factor * static_cast<double>(squared.dimension()));
    if (!use_streamed && squared.graph_part().num_edges() > threshold) {
      sparsify::SparsifyOptions spopt;
      spopt.epsilon = options.level_epsilon;
      spopt.rho = options.rho;
      spopt.t = options.t;
      spopt.seed = support::mix64(options.seed, level + 1);
      spopt.work = options.work;
      auto sparsified = sparsify::parallel_sparsify(squared.graph_part(), spopt);
      squared = SDDMatrix(std::move(sparsified.sparsifier),
                          Vector(squared.slack()));
    }
    current = std::move(squared);
  }

  if (tail_ == TailSmoother::kChebyshev) {
    // Spectral bounds of the last level for the Chebyshev tail. Ritz values
    // converge from inside, so pad: /4 below (must be a true lower bound for
    // every mode to be damped), *1.05 above.
    const SDDMatrix& last = levels_.back().matrix;
    const linalg::LinearOperator op{
        last.dimension(), [&last](std::span<const double> in, std::span<double> out) {
          last.apply(in, out);
        }};
    const auto ritz = linalg::lanczos_extreme(op, support::mix64(options.seed, 0xc4ebULL),
                                              60, project_constant_);
    tail_lambda_min_ = std::max(ritz.min_eigenvalue / 4.0, 1e-12);
    tail_lambda_max_ = ritz.max_eigenvalue * 1.05;
  }
}

std::size_t InverseChain::total_nnz() const {
  std::size_t total = 0;
  for (const Level& level : levels_) total += level.matrix.nnz();
  return total;
}

void InverseChain::apply_level(std::size_t level, std::span<const double> b,
                               std::span<double> y) const {
  const Level& lvl = levels_[level];
  const std::size_t n = b.size();

  if (level + 1 == levels_.size()) {
    apply_tail(b, y);
    return;
  }

  // u = (I + A D^{-1}) b
  Vector scaled(n), u(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = lvl.inv_diagonal[i] * b[i];
  lvl.adjacency.multiply(scaled, u);
  for (std::size_t i = 0; i < n; ++i) u[i] += b[i];

  // v = M_{i+1}^{-1} u
  Vector v(n);
  apply_level(level + 1, u, v);

  // y = 1/2 (D^{-1} b + v + D^{-1} A v)
  Vector av(n);
  lvl.adjacency.multiply(v, av);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = 0.5 * (lvl.inv_diagonal[i] * b[i] + v[i] + lvl.inv_diagonal[i] * av[i]);
  if (project_constant_) linalg::remove_mean(y);
}

void InverseChain::apply_tail(std::span<const double> b, std::span<double> y) const {
  const Level& lvl = levels_.back();
  const std::size_t n = b.size();
  // The tail computes M x as d o x - A x from the stored adjacency CSR and
  // diagonal (one CSR traversal per application) rather than going through
  // SDDMatrix's edge-list apply. The blocked tail uses the same formulation
  // with the blocked CSR kernel, so single and blocked columns stay
  // bit-identical while both get the cache-friendly traversal.
  const Vector& d = lvl.matrix.diagonal();

  if (tail_ == TailSmoother::kChebyshev) {
    const linalg::LinearOperator op{
        n, [&lvl, &d](std::span<const double> in, std::span<double> out) {
          lvl.adjacency.multiply(in, out);
          for (std::size_t i = 0; i < in.size(); ++i) out[i] = d[i] * in[i] - out[i];
        }};
    Vector x(n, 0.0);
    linalg::ChebyshevOptions copt;
    copt.lambda_min = tail_lambda_min_;
    copt.lambda_max = tail_lambda_max_;
    copt.iterations = chebyshev_steps_;
    copt.project_constant = project_constant_;
    linalg::chebyshev_solve(op, b, x, copt);
    if (project_constant_) linalg::remove_mean(x);
    linalg::copy(x, y);
    return;
  }

  // Damped Jacobi on M x = b starting from x = D^{-1} b:
  //   x <- x + D^{-1}(b - M x)
  Vector x(n), ax(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = lvl.inv_diagonal[i] * b[i];
  for (std::size_t step = 0; step < jacobi_steps_; ++step) {
    lvl.adjacency.multiply(x, ax);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += lvl.inv_diagonal[i] * (b[i] - (d[i] * x[i] - ax[i]));
  }
  if (project_constant_) linalg::remove_mean(x);
  linalg::copy(x, y);
}

void InverseChain::apply_level_multi(std::size_t level, const linalg::MultiVector& b,
                                     linalg::MultiVector& y) const {
  const Level& lvl = levels_[level];
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();

  if (level + 1 == levels_.size()) {
    apply_tail_multi(b, y);
    return;
  }

  // u = (I + A D^{-1}) b, with the A-multiply blocked across all k columns
  // (elementwise sweeps go i-outer, j-inner: one contiguous pass over the
  // interleaved block; per column the arithmetic is apply_level's exactly).
  linalg::MultiVector u(n, k);
  {
    linalg::MultiVector scaled(n, k);
    for (std::size_t i = 0; i < n; ++i) {
      const double inv_d = lvl.inv_diagonal[i];
      for (std::size_t j = 0; j < k; ++j) scaled.at(i, j) = inv_d * b.at(i, j);
    }
    lvl.adjacency.multiply(scaled, u);
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < k; ++j) u.at(i, j) += b.at(i, j);

  // v = M_{i+1}^{-1} u
  linalg::MultiVector v(n, k);
  apply_level_multi(level + 1, u, v);

  // y = 1/2 (D^{-1} b + v + D^{-1} A v); u is dead, reuse it for A v.
  linalg::MultiVector& av = u;
  lvl.adjacency.multiply(v, av);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_d = lvl.inv_diagonal[i];
    for (std::size_t j = 0; j < k; ++j)
      y.at(i, j) = 0.5 * (inv_d * b.at(i, j) + v.at(i, j) + inv_d * av.at(i, j));
  }
  if (project_constant_) linalg::remove_mean_columns(y);
}

void InverseChain::apply_tail_multi(const linalg::MultiVector& b,
                                    linalg::MultiVector& y) const {
  const Level& lvl = levels_.back();
  const std::size_t n = b.rows();
  const std::size_t k = b.cols();
  const Vector& d = lvl.matrix.diagonal();

  if (tail_ == TailSmoother::kChebyshev) {
    const linalg::BlockOperator op{
        n, [&lvl, &d](const linalg::MultiVector& in, linalg::MultiVector& out) {
          lvl.adjacency.multiply(in, out);
          for (std::size_t i = 0; i < in.rows(); ++i) {
            const double di = d[i];
            for (std::size_t j = 0; j < in.cols(); ++j)
              out.at(i, j) = di * in.at(i, j) - out.at(i, j);
          }
        }};
    linalg::MultiVector x(n, k, 0.0);
    linalg::ChebyshevOptions copt;
    copt.lambda_min = tail_lambda_min_;
    copt.lambda_max = tail_lambda_max_;
    copt.iterations = chebyshev_steps_;
    copt.project_constant = project_constant_;
    linalg::chebyshev_solve(op, b, x, copt);
    if (project_constant_) linalg::remove_mean_columns(x);
    linalg::copy(x.data(), y.data());
    return;
  }

  // Damped Jacobi, blocked: one adjacency traversal per sweep serves all k
  // columns; the per-entry update replicates apply_tail's expression exactly.
  linalg::MultiVector x(n, k), ax(n, k);
  for (std::size_t i = 0; i < n; ++i) {
    const double inv_d = lvl.inv_diagonal[i];
    for (std::size_t j = 0; j < k; ++j) x.at(i, j) = inv_d * b.at(i, j);
  }
  for (std::size_t step = 0; step < jacobi_steps_; ++step) {
    lvl.adjacency.multiply(x, ax);
    for (std::size_t i = 0; i < n; ++i) {
      const double inv_d = lvl.inv_diagonal[i];
      const double di = d[i];
      for (std::size_t j = 0; j < k; ++j)
        x.at(i, j) += inv_d * (b.at(i, j) - (di * x.at(i, j) - ax.at(i, j)));
    }
  }
  if (project_constant_) linalg::remove_mean_columns(x);
  linalg::copy(x.data(), y.data());
}

void InverseChain::apply(std::span<const double> b, std::span<double> y) const {
  SPAR_CHECK(b.size() == dimension() && y.size() == dimension(),
             "InverseChain::apply: size mismatch");
  apply_level(0, b, y);
}

void InverseChain::apply(const linalg::MultiVector& b, linalg::MultiVector& y) const {
  SPAR_CHECK(b.rows() == dimension() && y.rows() == dimension() &&
                 b.cols() == y.cols(),
             "InverseChain::apply: block shape mismatch");
  if (b.cols() == 0) return;
  apply_level_multi(0, b, y);
}

linalg::LinearOperator InverseChain::as_operator() const {
  return {dimension(), [this](std::span<const double> b, std::span<double> y) {
            apply(b, y);
          }};
}

linalg::BlockOperator InverseChain::as_block_operator() const {
  return {dimension(), [this](const linalg::MultiVector& b, linalg::MultiVector& y) {
            apply(b, y);
          }};
}

}  // namespace spar::solver
