#include "solver/chain.hpp"

#include <cmath>

#include "linalg/chebyshev.hpp"
#include "linalg/eigen_iterative.hpp"
#include "solver/squaring.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::solver {

using linalg::Vector;

InverseChain::InverseChain(SDDMatrix m, const ChainOptions& options) {
  tail_ = options.tail;
  jacobi_steps_ = options.last_level_jacobi_steps;
  chebyshev_steps_ = options.last_level_chebyshev_steps;
  project_constant_ = m.is_singular();

  SDDMatrix current = std::move(m);
  for (std::size_t level = 0; level < options.max_levels; ++level) {
    ChainLevelInfo info;
    info.edges = current.graph_part().num_edges();
    info.gamma = adjacency_dominance(current);

    Level stored;
    stored.matrix = current;
    stored.adjacency = current.adjacency_csr();
    const Vector& d = current.diagonal();
    stored.inv_diagonal.resize(d.size());
    for (std::size_t i = 0; i < d.size(); ++i) {
      SPAR_CHECK(d[i] > 0.0, "InverseChain: zero diagonal");
      stored.inv_diagonal[i] = 1.0 / d[i];
    }
    levels_.push_back(std::move(stored));
    info_.push_back(info);

    // Termination: Jacobi handles the rest once off-diagonal mass is small.
    // Singular Laplacians keep gamma == 1 (the nullspace direction never
    // decays), so they terminate by max_levels / saturation instead; the
    // chain is then used as a PCG preconditioner with constant projection.
    if (info.gamma <= options.gamma_stop) break;
    if (current.graph_part().num_edges() == 0) break;

    SquaringStats sq_stats;
    SDDMatrix squared = square(current, &sq_stats);
    info_.back().edges_after_square = sq_stats.output_edges;

    // Section 4: bring the level back toward its original size whenever it
    // exceeds the threshold of applicability m' = edge_factor * n.
    const auto threshold = static_cast<std::size_t>(
        options.edge_factor * static_cast<double>(squared.dimension()));
    if (squared.graph_part().num_edges() > threshold) {
      sparsify::SparsifyOptions spopt;
      spopt.epsilon = options.level_epsilon;
      spopt.rho = options.rho;
      spopt.t = options.t;
      spopt.seed = support::mix64(options.seed, level + 1);
      spopt.work = options.work;
      auto sparsified = sparsify::parallel_sparsify(squared.graph_part(), spopt);
      squared = SDDMatrix(std::move(sparsified.sparsifier),
                          Vector(squared.slack()));
    }
    current = std::move(squared);
  }

  if (tail_ == TailSmoother::kChebyshev) {
    // Spectral bounds of the last level for the Chebyshev tail. Ritz values
    // converge from inside, so pad: /4 below (must be a true lower bound for
    // every mode to be damped), *1.05 above.
    const SDDMatrix& last = levels_.back().matrix;
    const linalg::LinearOperator op{
        last.dimension(), [&last](std::span<const double> in, std::span<double> out) {
          last.apply(in, out);
        }};
    const auto ritz = linalg::lanczos_extreme(op, support::mix64(options.seed, 0xc4ebULL),
                                              60, project_constant_);
    tail_lambda_min_ = std::max(ritz.min_eigenvalue / 4.0, 1e-12);
    tail_lambda_max_ = ritz.max_eigenvalue * 1.05;
  }
}

std::size_t InverseChain::total_nnz() const {
  std::size_t total = 0;
  for (const Level& level : levels_) total += level.matrix.nnz();
  return total;
}

void InverseChain::apply_level(std::size_t level, std::span<const double> b,
                               std::span<double> y) const {
  const Level& lvl = levels_[level];
  const std::size_t n = b.size();

  if (level + 1 == levels_.size()) {
    apply_tail(b, y);
    return;
  }

  // u = (I + A D^{-1}) b
  Vector scaled(n), u(n);
  for (std::size_t i = 0; i < n; ++i) scaled[i] = lvl.inv_diagonal[i] * b[i];
  lvl.adjacency.multiply(scaled, u);
  for (std::size_t i = 0; i < n; ++i) u[i] += b[i];

  // v = M_{i+1}^{-1} u
  Vector v(n);
  apply_level(level + 1, u, v);

  // y = 1/2 (D^{-1} b + v + D^{-1} A v)
  Vector av(n);
  lvl.adjacency.multiply(v, av);
  for (std::size_t i = 0; i < n; ++i)
    y[i] = 0.5 * (lvl.inv_diagonal[i] * b[i] + v[i] + lvl.inv_diagonal[i] * av[i]);
  if (project_constant_) linalg::remove_mean(y);
}

void InverseChain::apply_tail(std::span<const double> b, std::span<double> y) const {
  const Level& lvl = levels_.back();
  const std::size_t n = b.size();

  if (tail_ == TailSmoother::kChebyshev) {
    const linalg::LinearOperator op{
        n, [&lvl](std::span<const double> in, std::span<double> out) {
          lvl.matrix.apply(in, out);
        }};
    Vector x(n, 0.0);
    linalg::ChebyshevOptions copt;
    copt.lambda_min = tail_lambda_min_;
    copt.lambda_max = tail_lambda_max_;
    copt.iterations = chebyshev_steps_;
    copt.project_constant = project_constant_;
    linalg::chebyshev_solve(op, b, x, copt);
    if (project_constant_) linalg::remove_mean(x);
    linalg::copy(x, y);
    return;
  }

  // Damped Jacobi on M x = b starting from x = D^{-1} b:
  //   x <- x + D^{-1}(b - M x)
  Vector x(n), residual(n);
  for (std::size_t i = 0; i < n; ++i) x[i] = lvl.inv_diagonal[i] * b[i];
  for (std::size_t step = 0; step < jacobi_steps_; ++step) {
    lvl.matrix.apply(x, residual);
    for (std::size_t i = 0; i < n; ++i)
      x[i] += lvl.inv_diagonal[i] * (b[i] - residual[i]);
  }
  if (project_constant_) linalg::remove_mean(x);
  linalg::copy(x, y);
}

void InverseChain::apply(std::span<const double> b, std::span<double> y) const {
  SPAR_CHECK(b.size() == dimension() && y.size() == dimension(),
             "InverseChain::apply: size mismatch");
  apply_level(0, b, y);
}

linalg::LinearOperator InverseChain::as_operator() const {
  return {dimension(), [this](std::span<const double> b, std::span<double> y) {
            apply(b, y);
          }};
}

}  // namespace spar::solver
