#include "solver/solver.hpp"

#include "support/assert.hpp"

namespace spar::solver {

using linalg::LinearOperator;
using linalg::Vector;

namespace {

SolveReport finish(Vector x, const linalg::CGReport& cg) {
  SolveReport report;
  report.solution = std::move(x);
  report.iterations = cg.iterations;
  report.relative_residual = cg.relative_residual;
  report.converged = cg.converged;
  return report;
}

}  // namespace

SolveReport solve_sdd(const SDDMatrix& m, std::span<const double> b,
                      const SolveOptions& options) {
  const InverseChain chain(m, options.chain);
  return solve_sdd(m, chain, b, options);
}

SolveReport solve_sdd(const SDDMatrix& m, const InverseChain& chain,
                      std::span<const double> b, const SolveOptions& options) {
  SPAR_CHECK(b.size() == m.dimension(), "solve_sdd: rhs size mismatch");
  Vector x(m.dimension(), 0.0);
  linalg::CGOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;
  cg.project_constant = m.is_singular();
  const auto report =
      linalg::preconditioned_cg(m.as_operator(), chain.as_operator(), b, x, cg);
  SolveReport out = finish(std::move(x), report);
  out.chain_levels = chain.num_levels();
  out.chain_total_nnz = chain.total_nnz();
  return out;
}

MultiSolveReport solve_sdd_multi(const SDDMatrix& m, const linalg::MultiVector& b,
                                 const SolveOptions& options) {
  SPAR_CHECK(b.rows() == m.dimension(), "solve_sdd_multi: rhs size mismatch");
  const InverseChain chain(m, options.chain);
  return solve_sdd_multi(m, chain, b, options);
}

MultiSolveReport solve_sdd_multi(const SDDMatrix& m, const InverseChain& chain,
                                 const linalg::MultiVector& b,
                                 const SolveOptions& options) {
  SPAR_CHECK(b.rows() == m.dimension(), "solve_sdd_multi: rhs size mismatch");
  MultiSolveReport report;
  report.solutions = linalg::MultiVector(m.dimension(), b.cols(), 0.0);
  report.chain_levels = chain.num_levels();
  report.chain_total_nnz = chain.total_nnz();
  linalg::CGOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;
  cg.project_constant = m.is_singular();
  if (b.cols() == 1) {
    // k = 1 fast path: a single-column block gains nothing from the blocked
    // kernels but pays their row-interleaved scratch and masking overhead
    // (E13 measured the blocked path SLOWER at k = 1). Route through the
    // scalar solve_sdd machinery instead; the blocked path's per-column
    // bit-identity contract makes this a pure speedup -- the solution and
    // per-column stats are the ones the blocked path would have produced.
    const linalg::Vector rhs = b.column_copy(0);
    linalg::Vector x(m.dimension(), 0.0);
    const auto scalar =
        linalg::preconditioned_cg(m.as_operator(), chain.as_operator(), rhs, x, cg);
    report.solutions.set_column(0, x);
    report.columns = {{scalar.iterations, scalar.relative_residual, scalar.converged}};
    report.iterations = scalar.iterations;
    report.block_applies = scalar.matvec_count;
    return report;
  }
  const auto block = linalg::blocked_pcg(m.as_block_operator(),
                                         chain.as_block_operator(), b,
                                         report.solutions, cg);
  report.columns = block.columns;
  report.iterations = block.iterations;
  report.block_applies = block.block_applies;
  return report;
}

SolveReport solve_cg(const SDDMatrix& m, std::span<const double> b,
                     const SolveOptions& options) {
  SPAR_CHECK(b.size() == m.dimension(), "solve_cg: rhs size mismatch");
  Vector x(m.dimension(), 0.0);
  linalg::CGOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;
  cg.project_constant = m.is_singular();
  const auto report = linalg::conjugate_gradient(m.as_operator(), b, x, cg);
  return finish(std::move(x), report);
}

SolveReport solve_jacobi_pcg(const SDDMatrix& m, std::span<const double> b,
                             const SolveOptions& options) {
  SPAR_CHECK(b.size() == m.dimension(), "solve_jacobi_pcg: rhs size mismatch");
  const Vector& d = m.diagonal();
  Vector inv_d(d.size());
  for (std::size_t i = 0; i < d.size(); ++i) {
    SPAR_CHECK(d[i] > 0.0, "solve_jacobi_pcg: zero diagonal");
    inv_d[i] = 1.0 / d[i];
  }
  const LinearOperator jacobi{
      m.dimension(), [&inv_d](std::span<const double> r, std::span<double> z) {
        for (std::size_t i = 0; i < inv_d.size(); ++i) z[i] = inv_d[i] * r[i];
      }};
  Vector x(m.dimension(), 0.0);
  linalg::CGOptions cg;
  cg.tolerance = options.tolerance;
  cg.max_iterations = options.max_iterations;
  cg.project_constant = m.is_singular();
  const auto report = linalg::preconditioned_cg(m.as_operator(), jacobi, b, x, cg);
  return finish(std::move(x), report);
}

SolveReport solve_chain_refinement(const SDDMatrix& m, const InverseChain& chain,
                                   std::span<const double> b,
                                   const SolveOptions& options) {
  SPAR_CHECK(b.size() == m.dimension(), "solve_chain_refinement: rhs size mismatch");
  const std::size_t n = m.dimension();
  Vector rhs(b.begin(), b.end());
  if (m.is_singular()) linalg::remove_mean(rhs);
  const double b_norm = linalg::norm2(rhs);

  SolveReport report;
  report.solution.assign(n, 0.0);
  report.chain_levels = chain.num_levels();
  report.chain_total_nnz = chain.total_nnz();
  if (b_norm == 0.0) {
    report.converged = true;
    return report;
  }

  Vector residual = rhs;
  Vector correction(n);
  for (std::size_t it = 0; it < options.max_iterations; ++it) {
    report.relative_residual = linalg::norm2(residual) / b_norm;
    if (report.relative_residual <= options.tolerance) {
      report.converged = true;
      return report;
    }
    chain.apply(residual, correction);
    linalg::axpy(1.0, correction, report.solution);
    m.apply(report.solution, residual);
    for (std::size_t i = 0; i < n; ++i) residual[i] = rhs[i] - residual[i];
    if (m.is_singular()) linalg::remove_mean(residual);
    ++report.iterations;
    // Divergence guard: a chain that is not a contraction (possible when the
    // per-level eps is too loose) makes refinement blow up; bail out so
    // callers can fall back to PCG.
    if (report.relative_residual > 1e6) break;
  }
  report.relative_residual = linalg::norm2(residual) / b_norm;
  report.converged = report.relative_residual <= options.tolerance;
  return report;
}

}  // namespace spar::solver
