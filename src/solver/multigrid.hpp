// Geometric multigrid for 2D-grid ("image affinity", Remark 1) SDD systems.
//
// Remark 1 of the paper contrasts the Peng-Spielman algebra with multigrid:
// on grid Laplacians, multigrid needs only constant-quality coarse
// approximations per level (errors do not compound multiplicatively), which
// is where its O(n)-work efficiency comes from. This module implements that
// comparator so bench_solver can put the chain solver next to it on the
// paper's own open-problem instance class.
//
// Construction is Galerkin: bilinear prolongation P between a rows x cols
// grid and its 2x-coarsened grid, coarse operator A_c = P^T A P (computed
// with the library's SpGEMM), weighted-Jacobi smoothing, V-cycles, CG on the
// coarsest level. Arbitrary positive edge weights are supported -- the
// Galerkin product, not rediscretization, builds the hierarchy.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/operator.hpp"
#include "solver/sdd_matrix.hpp"

namespace spar::solver {

/// V-cycle tuning knobs.
struct MultigridOptions {
  std::size_t pre_smooth = 2;        ///< Jacobi sweeps before coarse correction
  std::size_t post_smooth = 2;       ///< Jacobi sweeps after coarse correction
  double jacobi_weight = 2.0 / 3.0;  ///< damped-Jacobi weight (2/3 is classic)
  /// Stop coarsening when a side drops to this many points.
  std::size_t min_side = 4;
  double coarse_tolerance = 1e-10;   ///< CG tolerance on the coarsest level
  std::size_t coarse_max_iterations = 2000;  ///< CG cap on the coarsest level
};

/// Galerkin multigrid hierarchy over a 2D grid graph; one V-cycle is a
/// symmetric PSD approximate inverse (the PCG preconditioner bench_solver
/// compares the chain against).
class GridMultigrid {
 public:
  /// `m` must be the SDD matrix of a rows x cols grid graph (vertex (r, c)
  /// at index r * cols + c); weights arbitrary positive, slack optional.
  GridMultigrid(const SDDMatrix& m, std::size_t rows, std::size_t cols,
                const MultigridOptions& options = {});

  /// Number of grid levels in the hierarchy (finest included).
  std::size_t num_levels() const { return levels_.size(); }
  /// Total stored nonzeros across all level operators.
  std::size_t total_nnz() const;

  /// One V-cycle applied to b (zero initial guess): y ~ A^{-1} b.
  /// Symmetric positive (semi-)definite, so usable as a PCG preconditioner.
  void v_cycle(std::span<const double> b, std::span<double> y) const;

  /// The V-cycle as a LinearOperator (for preconditioned_cg).
  linalg::LinearOperator as_operator() const;

 private:
  struct Level {
    linalg::CSRMatrix a;           // operator at this level
    linalg::Vector inv_diagonal;   // Jacobi
    linalg::CSRMatrix prolongation;// from next-coarser level (absent on last)
    std::size_t rows = 0;
    std::size_t cols = 0;
  };

  void cycle(std::size_t level, std::span<const double> b,
             std::span<double> x) const;
  void smooth(const Level& level, std::span<const double> b,
              std::span<double> x, std::size_t sweeps) const;

  std::vector<Level> levels_;
  MultigridOptions options_;
  bool project_constant_;
};

/// Outcome of multigrid_solve (mirrors SolveReport plus hierarchy size).
struct MultigridSolveReport {
  linalg::Vector solution;         ///< solution vector x
  std::size_t iterations = 0;      ///< outer PCG iterations
  double relative_residual = 0.0;  ///< achieved ||b - A x|| / ||b||
  bool converged = false;          ///< residual <= tolerance
  std::size_t levels = 0;          ///< hierarchy depth used
  std::size_t total_nnz = 0;       ///< stored nonzeros across levels
};

/// Convenience: solve a grid SDD system with multigrid-preconditioned CG.
MultigridSolveReport multigrid_solve(const SDDMatrix& m, std::size_t rows,
                                     std::size_t cols, std::span<const double> b,
                                     double tolerance = 1e-8,
                                     std::size_t max_iterations = 500,
                                     const MultigridOptions& options = {});

}  // namespace spar::solver
