// Public SDD solve API (Theorem 6) plus the baselines bench_solver compares:
//
//  * solve_sdd            - chain-preconditioned CG (the paper's solver:
//                           Peng-Spielman framework + PARALLELSPARSIFY chain)
//  * solve_cg             - plain conjugate gradient
//  * solve_jacobi_pcg     - diagonally preconditioned CG
//
// All three report iterations, matvec counts and achieved residuals so the
// benches can compare total work at equal accuracy.
#pragma once

#include <optional>

#include "linalg/cg.hpp"
#include "solver/chain.hpp"

namespace spar::solver {

struct SolveOptions {
  double tolerance = 1e-8;
  std::size_t max_iterations = 20000;
  ChainOptions chain;  ///< used by solve_sdd only
};

struct SolveReport {
  linalg::Vector solution;
  std::size_t iterations = 0;
  double relative_residual = 0.0;
  bool converged = false;
  std::size_t chain_levels = 0;     ///< solve_sdd only
  std::size_t chain_total_nnz = 0;  ///< solve_sdd only
};

/// Chain-preconditioned CG. Works for nonsingular SDD matrices and for
/// connected singular Laplacians (b is projected onto range(M)).
SolveReport solve_sdd(const SDDMatrix& m, std::span<const double> b,
                      const SolveOptions& options = {});

/// Same, reusing a prebuilt chain (amortizes setup across right-hand sides).
SolveReport solve_sdd(const SDDMatrix& m, const InverseChain& chain,
                      std::span<const double> b, const SolveOptions& options = {});

SolveReport solve_cg(const SDDMatrix& m, std::span<const double> b,
                     const SolveOptions& options = {});

SolveReport solve_jacobi_pcg(const SDDMatrix& m, std::span<const double> b,
                             const SolveOptions& options = {});

/// Standalone chain solve via iterative refinement (Richardson with the
/// chain as approximate inverse):  x <- x + W(b - M x).  This is how
/// Peng-Spielman (Theorem 4.5) consume the chain -- each sweep multiplies the
/// error by the chain's approximation factor, so iterations = O(log(1/tau))
/// when the chain is a constant-factor inverse. PCG (solve_sdd) is the
/// robust practical wrapper; this entry point exists to exercise and measure
/// the paper's own scheme.
SolveReport solve_chain_refinement(const SDDMatrix& m, const InverseChain& chain,
                                   std::span<const double> b,
                                   const SolveOptions& options = {});

}  // namespace spar::solver
