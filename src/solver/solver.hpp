// Public SDD solve API (Theorem 6) plus the baselines bench_solver compares:
//
//  * solve_sdd            - chain-preconditioned CG (the paper's solver:
//                           Peng-Spielman framework + PARALLELSPARSIFY chain)
//  * solve_cg             - plain conjugate gradient
//  * solve_jacobi_pcg     - diagonally preconditioned CG
//
// All three report iterations, matvec counts and achieved residuals so the
// benches can compare total work at equal accuracy.
#pragma once

#include <optional>

#include "linalg/cg.hpp"
#include "solver/chain.hpp"

namespace spar::solver {

/// Shared options for every solve entry point in this header.
struct SolveOptions {
  double tolerance = 1e-8;             ///< target relative residual
  std::size_t max_iterations = 20000;  ///< outer (P)CG iteration cap
  ChainOptions chain;  ///< used by solve_sdd / solve_sdd_multi only
};

/// Outcome of a single-RHS solve.
struct SolveReport {
  linalg::Vector solution;         ///< solution vector x
  std::size_t iterations = 0;      ///< (P)CG iterations run
  double relative_residual = 0.0;  ///< achieved ||b - M x|| / ||b||
  bool converged = false;          ///< residual <= tolerance
  std::size_t chain_levels = 0;     ///< solve_sdd only
  std::size_t chain_total_nnz = 0;  ///< solve_sdd only
};

/// Result of a batched multi-RHS solve (solve_sdd_multi): one solution
/// column and one per-RHS stats entry per right-hand side.
struct MultiSolveReport {
  linalg::MultiVector solutions;  ///< solutions.column(j) solves M x = b.column(j)
  /// Per-RHS iterations / achieved residual / convergence flag.
  std::vector<linalg::BlockColumnStats> columns;
  std::size_t iterations = 0;       ///< block iterations run (max over columns)
  std::uint64_t block_applies = 0;  ///< blocked applications of M
  std::size_t chain_levels = 0;     ///< levels of the chain used
  std::size_t chain_total_nnz = 0;  ///< stored nonzeros across the chain
  /// True when every right-hand side converged.
  bool all_converged() const {
    for (const linalg::BlockColumnStats& c : columns)
      if (!c.converged) return false;
    return !columns.empty();
  }
};

/// Chain-preconditioned CG. Works for nonsingular SDD matrices and for
/// connected singular Laplacians (b is projected onto range(M)).
SolveReport solve_sdd(const SDDMatrix& m, std::span<const double> b,
                      const SolveOptions& options = {});

/// Same, reusing a prebuilt chain (amortizes setup across right-hand sides).
SolveReport solve_sdd(const SDDMatrix& m, const InverseChain& chain,
                      std::span<const double> b, const SolveOptions& options = {});

/// Batched chain-preconditioned CG: solves M x = b_j for every column of `b`
/// with ONE chain built once and applied to the whole block per iteration
/// (each level's CSR is traversed once for all columns). Column j's solution
/// is bit-identical to solve_sdd(m, b.column(j)) with the same options --
/// batching changes throughput, never results. A single-column block (k = 1)
/// dispatches through the scalar solve_sdd path, which is faster there (the
/// blocked kernels only pay off from k >= 2); by the bit-identity contract
/// the answer is unchanged. Peak scratch is O(chain_levels * n * k) doubles;
/// split very wide blocks at the call site.
MultiSolveReport solve_sdd_multi(const SDDMatrix& m, const linalg::MultiVector& b,
                                 const SolveOptions& options = {});

/// Same, reusing a prebuilt chain (the full amortization: setup once, one
/// blocked sweep for all right-hand sides).
MultiSolveReport solve_sdd_multi(const SDDMatrix& m, const InverseChain& chain,
                                 const linalg::MultiVector& b,
                                 const SolveOptions& options = {});

/// Baseline: plain (unpreconditioned) conjugate gradient.
SolveReport solve_cg(const SDDMatrix& m, std::span<const double> b,
                     const SolveOptions& options = {});

/// Baseline: diagonally (Jacobi) preconditioned CG.
SolveReport solve_jacobi_pcg(const SDDMatrix& m, std::span<const double> b,
                             const SolveOptions& options = {});

/// Standalone chain solve via iterative refinement (Richardson with the
/// chain as approximate inverse):  x <- x + W(b - M x).  This is how
/// Peng-Spielman (Theorem 4.5) consume the chain -- each sweep multiplies the
/// error by the chain's approximation factor, so iterations = O(log(1/tau))
/// when the chain is a constant-factor inverse. PCG (solve_sdd) is the
/// robust practical wrapper; this entry point exists to exercise and measure
/// the paper's own scheme.
SolveReport solve_chain_refinement(const SDDMatrix& m, const InverseChain& chain,
                                   std::span<const double> b,
                                   const SolveOptions& options = {});

}  // namespace spar::solver
