// Approximate inverse chains (Peng-Spielman, Section 4 of the paper).
//
// Level i stores M_i = D_i - A_i; M_{i+1} approximates D_i - A_i D_i^{-1} A_i
// with the graph part sparsified by PARALLELSPARSIFY whenever it exceeds the
// size threshold (this is precisely where Theorem 5 plugs in: sparsify by a
// chosen factor rho instead of all the way down, Section 4's refinement).
// The chain applies
//
//   M_i^{-1} b ~ 1/2 [ D_i^{-1} b + (I + D_i^{-1} A_i) M_{i+1}^{-1} (I + A_i D_i^{-1}) b ]
//
// recursively; the last level is solved with damped Jacobi. The resulting
// operator is symmetric PSD, so it serves directly as a PCG preconditioner
// (how bench_solver uses it), and as a standalone solver via iterative
// refinement.
//
// The squaring step is where fill-in explodes (A D^{-1} A connects every
// 2-hop pair). ChainOptions::squaring picks how each level absorbs it:
// materialize the exact product then sparsify (kDense), or fuse the
// sparsifier into the SpGEMM so the product streams through a bounded-memory
// tower and is never resident (kStreamed; kAuto switches by projected fill).
// ChainOptions::max_level_fill turns the projection into a hard guard that
// refuses a dense square before any product memory is committed.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/operator.hpp"
#include "solver/sdd_matrix.hpp"
#include "sparsify/sparsify.hpp"

namespace spar::solver {

/// Smoother used on the last chain level (where gamma is small enough that a
/// few sweeps solve the remaining system).
enum class TailSmoother {
  kJacobi,     ///< damped Jacobi sweeps (no setup, gamma-rate convergence)
  kChebyshev,  ///< Chebyshev semi-iteration with Lanczos-estimated bounds;
               ///< sqrt(kappa)-rate, no inner products (PRAM-friendlier)
};

/// How each level's square A D^{-1} A is produced (see solver/squaring.hpp).
enum class SquaringMode {
  /// Dense while a level's projected fill stays small, streamed past
  /// ChainOptions::streamed_fill_threshold (or past max_level_fill when that
  /// guard is set): small instances keep the exact reference path, big ones
  /// never materialize the product.
  kAuto,
  /// Always materialize the exact product (square()); the parity reference.
  /// With max_level_fill set this mode refuses oversized levels with a
  /// diagnosed error instead of attempting the SpGEMM.
  kDense,
  /// Always fuse sparsify-during-squaring (square_streamed()): bounded
  /// resident memory, the level's eps budget spent inside the tower.
  kStreamed,
};

struct ChainOptions {
  /// Per-level sparsifier accuracy. The theory needs eps = 1/O(log kappa);
  /// wrapped in PCG a constant works and is what we default to.
  double level_epsilon = 0.5;
  /// Sparsification factor per level (Theorem 5's rho).
  double rho = 4.0;
  /// Bundle width forwarded to PARALLELSPARSIFY (0 = theoretical).
  std::size_t t = 2;
  /// Sparsify a level only when its graph part has more than
  /// edge_factor * n edges (the "threshold of applicability" m').
  double edge_factor = 4.0;
  /// Hard cap on chain depth (singular Laplacians terminate here: their
  /// gamma never decays).
  std::size_t max_levels = 24;
  /// Stop when adjacency dominance gamma = max_i rowsum(A)/D drops below
  /// this (Jacobi converges at rate gamma on the last level).
  double gamma_stop = 0.25;
  TailSmoother tail = TailSmoother::kJacobi;  ///< last-level smoother choice
  std::size_t last_level_jacobi_steps = 12;   ///< sweeps for TailSmoother::kJacobi
  std::size_t last_level_chebyshev_steps = 16;  ///< steps for kChebyshev
  std::uint64_t seed = 99;  ///< seeds the per-level sparsifier coins
  /// How each level's square is produced (dense SpGEMM vs streamed tower).
  SquaringMode squaring = SquaringMode::kAuto;
  /// kAuto switches a level to streamed squaring once projected_square_fill
  /// exceeds this many product entries. The default keeps small instances
  /// (and the existing tests) on the dense reference path.
  std::size_t streamed_fill_threshold = std::size_t{1} << 22;
  /// Fill-in guard: 0 = off. When set and a level's projected fill exceeds
  /// it, kDense throws a diagnosed spar::Error (naming the level, the
  /// projection, and the streamed-squaring escape hatch) BEFORE committing
  /// product memory; kAuto switches to streamed at this bound too (it acts
  /// as a second, stricter streamed_fill_threshold).
  std::size_t max_level_fill = 0;
  /// Streamed squaring: tower batch granularity in edges.
  std::size_t stream_batch_edges = std::size_t{1} << 17;
  /// Streamed squaring: tower resident-level cap (peak memory knob).
  std::size_t stream_max_resident_levels = 3;
  /// Streamed squaring: target symbolic fill per SpGEMM row-block.
  std::size_t stream_block_fill_edges = std::size_t{1} << 20;
  support::WorkCounter* work = nullptr;  ///< optional work accounting sink
};

/// Per-level bookkeeping recorded while the chain is built. The squaring
/// fields describe the step that produced the NEXT level from this one (all
/// zero/false on the final level, which never squares).
struct ChainLevelInfo {
  std::size_t edges_after_square = 0;  ///< 0 for the input level
  std::size_t edges = 0;               ///< stored (possibly sparsified) edges
  double gamma = 0.0;                  ///< adjacency dominance at this level
  /// Symbolic fill bound of this level's square (what the guard / auto mode
  /// decided on; the streamed path reports the bound it planned with).
  std::size_t projected_fill = 0;
  bool streamed_square = false;  ///< next level built by square_streamed()
  /// Peak resident edges of the squaring step (tower + block + batch when
  /// streamed; the materialized product's nnz when dense).
  std::size_t peak_resident_edges = 0;
  std::size_t sparsify_passes = 0;   ///< streamed-tower reduce passes
  double epsilon_budget_used = 0.0;  ///< composed tower eps (streamed only)
};

class InverseChain {
 public:
  /// Builds the chain for `m`. Levels stop at gamma_stop, max_levels, or when
  /// squaring stops changing anything.
  InverseChain(SDDMatrix m, const ChainOptions& options);

  /// Number of stored levels (>= 1).
  std::size_t num_levels() const { return levels_.size(); }
  /// Dimension n shared by every level (squaring never coarsens vertices).
  std::size_t dimension() const { return levels_.front().matrix.dimension(); }
  /// Build-time bookkeeping, one entry per level.
  const std::vector<ChainLevelInfo>& level_info() const { return info_; }

  /// Total stored nonzeros across the chain ("total size of the approximate
  /// inverse chain" in Theorem 6's work bound).
  std::size_t total_nnz() const;

  /// y ~ M^{-1} b: one top-down chain application (symmetric PSD operator).
  void apply(std::span<const double> b, std::span<double> y) const;

  /// Blocked chain application: Y.column(j) ~ M^{-1} B.column(j) for every
  /// column, with each level's CSR structure traversed once for the whole
  /// block (the batched-solve hot path). Per column the arithmetic replicates
  /// the single-vector apply() exactly, so results are bit-identical to
  /// applying the chain to each column alone. Scratch is O(levels * n * k)
  /// doubles; batch very wide blocks at the call site if memory matters.
  void apply(const linalg::MultiVector& b, linalg::MultiVector& y) const;

  /// The chain as a LinearOperator (for preconditioned_cg).
  linalg::LinearOperator as_operator() const;

  /// The chain as a BlockOperator (for blocked_pcg / solve_sdd_multi).
  linalg::BlockOperator as_block_operator() const;

 private:
  struct Level {
    SDDMatrix matrix;
    linalg::Vector inv_diagonal;
    linalg::CSRMatrix adjacency;
  };

  void apply_level(std::size_t level, std::span<const double> b,
                   std::span<double> y) const;
  void apply_tail(std::span<const double> b, std::span<double> y) const;
  void apply_level_multi(std::size_t level, const linalg::MultiVector& b,
                         linalg::MultiVector& y) const;
  void apply_tail_multi(const linalg::MultiVector& b, linalg::MultiVector& y) const;

  std::vector<Level> levels_;
  std::vector<ChainLevelInfo> info_;
  TailSmoother tail_;
  std::size_t jacobi_steps_;
  std::size_t chebyshev_steps_;
  double tail_lambda_min_ = 0.0;
  double tail_lambda_max_ = 0.0;
  bool project_constant_;
};

}  // namespace spar::solver
