// Approximate inverse chains (Peng-Spielman, Section 4 of the paper).
//
// Level i stores M_i = D_i - A_i; M_{i+1} approximates D_i - A_i D_i^{-1} A_i
// with the graph part sparsified by PARALLELSPARSIFY whenever it exceeds the
// size threshold (this is precisely where Theorem 5 plugs in: sparsify by a
// chosen factor rho instead of all the way down, Section 4's refinement).
// The chain applies
//
//   M_i^{-1} b ~ 1/2 [ D_i^{-1} b + (I + D_i^{-1} A_i) M_{i+1}^{-1} (I + A_i D_i^{-1}) b ]
//
// recursively; the last level is solved with damped Jacobi. The resulting
// operator is symmetric PSD, so it serves directly as a PCG preconditioner
// (how bench_solver uses it), and as a standalone solver via iterative
// refinement.
#pragma once

#include <cstdint>
#include <vector>

#include "linalg/operator.hpp"
#include "solver/sdd_matrix.hpp"
#include "sparsify/sparsify.hpp"

namespace spar::solver {

/// Smoother used on the last chain level (where gamma is small enough that a
/// few sweeps solve the remaining system).
enum class TailSmoother {
  kJacobi,     ///< damped Jacobi sweeps (no setup, gamma-rate convergence)
  kChebyshev,  ///< Chebyshev semi-iteration with Lanczos-estimated bounds;
               ///< sqrt(kappa)-rate, no inner products (PRAM-friendlier)
};

struct ChainOptions {
  /// Per-level sparsifier accuracy. The theory needs eps = 1/O(log kappa);
  /// wrapped in PCG a constant works and is what we default to.
  double level_epsilon = 0.5;
  /// Sparsification factor per level (Theorem 5's rho).
  double rho = 4.0;
  /// Bundle width forwarded to PARALLELSPARSIFY (0 = theoretical).
  std::size_t t = 2;
  /// Sparsify a level only when its graph part has more than
  /// edge_factor * n edges (the "threshold of applicability" m').
  double edge_factor = 4.0;
  /// Hard cap on chain depth (singular Laplacians terminate here: their
  /// gamma never decays).
  std::size_t max_levels = 24;
  /// Stop when adjacency dominance gamma = max_i rowsum(A)/D drops below
  /// this (Jacobi converges at rate gamma on the last level).
  double gamma_stop = 0.25;
  TailSmoother tail = TailSmoother::kJacobi;  ///< last-level smoother choice
  std::size_t last_level_jacobi_steps = 12;   ///< sweeps for TailSmoother::kJacobi
  std::size_t last_level_chebyshev_steps = 16;  ///< steps for kChebyshev
  std::uint64_t seed = 99;  ///< seeds the per-level sparsifier coins
  support::WorkCounter* work = nullptr;  ///< optional work accounting sink
};

/// Per-level bookkeeping recorded while the chain is built.
struct ChainLevelInfo {
  std::size_t edges_after_square = 0;  ///< 0 for the input level
  std::size_t edges = 0;               ///< stored (possibly sparsified) edges
  double gamma = 0.0;                  ///< adjacency dominance at this level
};

class InverseChain {
 public:
  /// Builds the chain for `m`. Levels stop at gamma_stop, max_levels, or when
  /// squaring stops changing anything.
  InverseChain(SDDMatrix m, const ChainOptions& options);

  /// Number of stored levels (>= 1).
  std::size_t num_levels() const { return levels_.size(); }
  /// Dimension n shared by every level (squaring never coarsens vertices).
  std::size_t dimension() const { return levels_.front().matrix.dimension(); }
  /// Build-time bookkeeping, one entry per level.
  const std::vector<ChainLevelInfo>& level_info() const { return info_; }

  /// Total stored nonzeros across the chain ("total size of the approximate
  /// inverse chain" in Theorem 6's work bound).
  std::size_t total_nnz() const;

  /// y ~ M^{-1} b: one top-down chain application (symmetric PSD operator).
  void apply(std::span<const double> b, std::span<double> y) const;

  /// Blocked chain application: Y.column(j) ~ M^{-1} B.column(j) for every
  /// column, with each level's CSR structure traversed once for the whole
  /// block (the batched-solve hot path). Per column the arithmetic replicates
  /// the single-vector apply() exactly, so results are bit-identical to
  /// applying the chain to each column alone. Scratch is O(levels * n * k)
  /// doubles; batch very wide blocks at the call site if memory matters.
  void apply(const linalg::MultiVector& b, linalg::MultiVector& y) const;

  /// The chain as a LinearOperator (for preconditioned_cg).
  linalg::LinearOperator as_operator() const;

  /// The chain as a BlockOperator (for blocked_pcg / solve_sdd_multi).
  linalg::BlockOperator as_block_operator() const;

 private:
  struct Level {
    SDDMatrix matrix;
    linalg::Vector inv_diagonal;
    linalg::CSRMatrix adjacency;
  };

  void apply_level(std::size_t level, std::span<const double> b,
                   std::span<double> y) const;
  void apply_tail(std::span<const double> b, std::span<double> y) const;
  void apply_level_multi(std::size_t level, const linalg::MultiVector& b,
                         linalg::MultiVector& y) const;
  void apply_tail_multi(const linalg::MultiVector& b, linalg::MultiVector& y) const;

  std::vector<Level> levels_;
  std::vector<ChainLevelInfo> info_;
  TailSmoother tail_;
  std::size_t jacobi_steps_;
  std::size_t chebyshev_steps_;
  double tail_lambda_min_ = 0.0;
  double tail_lambda_max_ = 0.0;
  bool project_constant_;
};

}  // namespace spar::solver
