#include "solver/squaring.hpp"

#include <algorithm>
#include <cmath>

#include "linalg/laplacian.hpp"
#include "support/assert.hpp"

namespace spar::solver {

using graph::Graph;
using graph::Vertex;
using linalg::CSRMatrix;
using linalg::Vector;

SDDMatrix square(const SDDMatrix& m, SquaringStats* stats) {
  const std::size_t n = m.dimension();
  const Vector& d = m.diagonal();
  for (double di : d) SPAR_CHECK(di > 0.0, "square: zero diagonal (isolated vertex)");

  // S = A D^{-1} A = (A D^{-1/2}) (D^{-1/2} A): scale symmetrically then GEMM.
  Vector inv_sqrt_d(n);
  for (std::size_t i = 0; i < n; ++i) inv_sqrt_d[i] = 1.0 / std::sqrt(d[i]);
  const CSRMatrix a = m.adjacency_csr();
  const CSRMatrix a_scaled = a.scaled_symmetric(inv_sqrt_d);
  // (A D^{-1/2}) rows scaled on the right only: a.scaled_symmetric scales both
  // sides; S = D^{1/2} (D^{-1/2} A D^{-1/2})^2 D^{1/2}. Using X = D^{-1/2}AD^{-1/2}:
  // S = D^{1/2} X X D^{1/2}.
  const CSRMatrix x2 = a_scaled.multiply(a_scaled);
  Vector sqrt_d(n);
  for (std::size_t i = 0; i < n; ++i) sqrt_d[i] = std::sqrt(d[i]);
  const CSRMatrix s = x2.scaled_symmetric(sqrt_d);

  // Split S into off-diagonal (new adjacency) and diagonal.
  Graph new_graph(static_cast<Vertex>(n));
  Vector s_diag(n, 0.0);
  const auto offsets = s.row_offsets();
  const auto cols = s.col_indices();
  const auto vals = s.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      const std::uint32_t c = cols[k];
      if (c == r) {
        s_diag[r] += vals[k];
      } else if (c > r && vals[k] > 0.0) {
        new_graph.add_edge(static_cast<Vertex>(r), c, vals[k]);
      }
    }
  }

  // New slack: D - diag(S) - rowsum(offdiag(S)) >= 0 (exactly 0 for
  // Laplacians); clamp tiny negative fuzz from floating point.
  Vector new_degree = linalg::degree_vector(new_graph);
  Vector new_slack(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double slack = d[i] - s_diag[i] - new_degree[i];
    SPAR_CHECK(slack > -1e-8 * std::max(1.0, d[i]),
               "square: negative slack beyond roundoff; input was not SDD");
    // Snap roundoff fuzz to exactly zero so Laplacians square to Laplacians
    // (singularity is decided by slack == 0).
    new_slack[i] = slack > 1e-12 * std::max(1.0, d[i]) ? slack : 0.0;
  }

  if (stats != nullptr) {
    stats->input_edges = m.graph_part().num_edges();
    stats->output_edges = new_graph.num_edges();
  }
  return SDDMatrix(std::move(new_graph), std::move(new_slack));
}

double adjacency_dominance(const SDDMatrix& m) {
  const Vector degree = linalg::degree_vector(m.graph_part());
  const Vector& d = m.diagonal();
  double gamma = 0.0;
  for (std::size_t i = 0; i < m.dimension(); ++i) {
    if (d[i] > 0.0) gamma = std::max(gamma, degree[i] / d[i]);
  }
  return gamma;
}

}  // namespace spar::solver
