#include "solver/squaring.hpp"

#include <algorithm>
#include <cmath>
#include <utility>
#include <vector>

#include "graph/edge_view.hpp"
#include "linalg/laplacian.hpp"
#include "sparsify/stream.hpp"
#include "support/assert.hpp"

namespace spar::solver {

using graph::Graph;
using graph::Vertex;
using linalg::CSRMatrix;
using linalg::Vector;

namespace {

/// New slack d - diag(S) - rowsum(offdiag(S)) >= 0 (exactly 0 for
/// Laplacians); clamps tiny negative fuzz from floating point and snaps
/// roundoff to exactly zero so Laplacians square to Laplacians (singularity
/// is decided by slack == 0). Shared by the dense and streamed paths so both
/// apply the identical tolerance policy.
Vector slack_from_rowsums(const Vector& d, const Vector& s_diag,
                          const Vector& offdiag_rowsum) {
  const std::size_t n = d.size();
  Vector new_slack(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double slack = d[i] - s_diag[i] - offdiag_rowsum[i];
    SPAR_CHECK(slack > -1e-8 * std::max(1.0, d[i]),
               "square: negative slack beyond roundoff; input was not SDD");
    new_slack[i] = slack > 1e-12 * std::max(1.0, d[i]) ? slack : 0.0;
  }
  return new_slack;
}

}  // namespace

SDDMatrix square(const SDDMatrix& m, SquaringStats* stats) {
  const std::size_t n = m.dimension();
  const Vector& d = m.diagonal();
  for (double di : d) SPAR_CHECK(di > 0.0, "square: zero diagonal (isolated vertex)");

  // S = A D^{-1} A = (A D^{-1/2}) (D^{-1/2} A): scale symmetrically then GEMM.
  Vector inv_sqrt_d(n);
  for (std::size_t i = 0; i < n; ++i) inv_sqrt_d[i] = 1.0 / std::sqrt(d[i]);
  const CSRMatrix a = m.adjacency_csr();
  const CSRMatrix a_scaled = a.scaled_symmetric(inv_sqrt_d);
  // (A D^{-1/2}) rows scaled on the right only: a.scaled_symmetric scales both
  // sides; S = D^{1/2} (D^{-1/2} A D^{-1/2})^2 D^{1/2}. Using X = D^{-1/2}AD^{-1/2}:
  // S = D^{1/2} X X D^{1/2}.
  const CSRMatrix x2 = a_scaled.multiply(a_scaled);
  Vector sqrt_d(n);
  for (std::size_t i = 0; i < n; ++i) sqrt_d[i] = std::sqrt(d[i]);
  const CSRMatrix s = x2.scaled_symmetric(sqrt_d);

  // Split S into off-diagonal (new adjacency) and diagonal.
  Graph new_graph(static_cast<Vertex>(n));
  Vector s_diag(n, 0.0);
  const auto offsets = s.row_offsets();
  const auto cols = s.col_indices();
  const auto vals = s.values();
  for (std::size_t r = 0; r < n; ++r) {
    for (std::size_t k = offsets[r]; k < offsets[r + 1]; ++k) {
      const std::uint32_t c = cols[k];
      if (c == r) {
        s_diag[r] += vals[k];
      } else if (vals[k] <= 0.0) {
        // Off-diagonal mass that cancelled to <= 0 (product entries are sums
        // of nonnegative terms, so this is underflow-to-zero on extreme
        // weight ranges, never genuine negativity). Fold it into the diagonal
        // rather than dropping it: each row's sum -- and therefore its slack
        // -- then matches the computed product exactly, and Laplacian inputs
        // stay exactly singular instead of leaking spurious slack.
        s_diag[r] += vals[k];
      } else if (c > r) {
        new_graph.add_edge(static_cast<Vertex>(r), c, vals[k]);
      }
    }
  }

  Vector new_degree = linalg::degree_vector(new_graph);
  Vector new_slack = slack_from_rowsums(d, s_diag, new_degree);

  if (stats != nullptr) {
    stats->input_edges = m.graph_part().num_edges();
    stats->output_edges = new_graph.num_edges();
    stats->product_edges = new_graph.num_edges();
    stats->peak_resident_edges = x2.nnz();
  }
  return SDDMatrix(std::move(new_graph), std::move(new_slack));
}

SDDMatrix square_streamed(const SDDMatrix& m, const StreamedSquareOptions& options,
                          SquaringStats* stats) {
  const std::size_t n = m.dimension();
  const Vector& d = m.diagonal();
  for (double di : d)
    SPAR_CHECK(di > 0.0, "square_streamed: zero diagonal (isolated vertex)");
  SPAR_CHECK(options.batch_edges > 0, "square_streamed: batch_edges must be positive");
  SPAR_CHECK(options.block_fill_edges > 0,
             "square_streamed: block_fill_edges must be positive");

  Vector inv_sqrt_d(n), sqrt_d(n);
  for (std::size_t i = 0; i < n; ++i) {
    sqrt_d[i] = std::sqrt(d[i]);
    inv_sqrt_d[i] = 1.0 / sqrt_d[i];
  }
  const CSRMatrix a = m.adjacency_csr();
  const CSRMatrix x = a.scaled_symmetric(inv_sqrt_d);

  // Plan before committing any product memory: per-row symbolic fill bounds
  // drive both the row-block partition and the tower's batch plan. Emitted
  // upper-triangle edges never exceed half the total expansion count, so the
  // derived batch count is a valid upper bound for the eps budget split.
  const std::vector<std::size_t> fill = x.multiply_fill_bound(x);
  std::size_t total_fill = 0;
  for (const std::size_t f : fill) total_fill += f;

  sparsify::StreamOptions sopt;
  sopt.epsilon = options.epsilon;
  sopt.rho = options.rho;
  sopt.t = options.t;
  sopt.seed = options.seed;
  sopt.batch_edges = options.batch_edges;
  sopt.planned_batches = std::max<std::size_t>(
      1, (total_fill / 2 + options.batch_edges - 1) / options.batch_edges);
  sopt.max_resident_levels = options.max_resident_levels;
  sopt.work = options.work;
  sparsify::StreamSparsifier tower(static_cast<Vertex>(n), sopt);

  // Exact row sums of S = D^{1/2} X X D^{1/2} accumulate on the way past the
  // tower, so the slack is computed from the PRE-sparsification product (the
  // sparsifier only ever sees the graph part). The emit scan is serial per
  // block, so batch contents are a pure function of (matrix, block plan) --
  // the determinism contract; the SpGEMM inside each block is the parallel
  // (but deterministic) Gustavson kernel.
  Vector s_diag(n, 0.0), offdiag_rowsum(n, 0.0);
  std::vector<Vertex> bu, bv;
  std::vector<double> bw;
  bu.reserve(options.batch_edges);
  bv.reserve(options.batch_edges);
  bw.reserve(options.batch_edges);
  std::size_t product_edges = 0, row_blocks = 0, max_block_nnz = 0;

  const auto flush = [&] {
    if (bu.empty()) return;
    const graph::EdgeView batch{static_cast<Vertex>(n), bu.size(), bu.data(),
                                bv.data(), bw.data()};
    tower.push_batch(batch);
    bu.clear();
    bv.clear();
    bw.clear();
  };

  std::size_t rb = 0;
  while (rb < n) {
    // Greedy partition: grow the block while its symbolic fill fits the
    // budget (a single row may exceed it alone; it then gets its own block).
    std::size_t re = rb + 1;
    std::size_t block_fill = fill[rb];
    while (re < n && block_fill + fill[re] <= options.block_fill_edges) {
      block_fill += fill[re];
      ++re;
    }

    const CSRMatrix x2b = x.multiply(x, rb, re);
    ++row_blocks;
    max_block_nnz = std::max(max_block_nnz, x2b.nnz());
    const auto offsets = x2b.row_offsets();
    const auto cols = x2b.col_indices();
    const auto vals = x2b.values();
    for (std::size_t lr = 0; lr < re - rb; ++lr) {
      const std::size_t r = rb + lr;
      const double sr = sqrt_d[r];
      for (std::size_t k = offsets[lr]; k < offsets[lr + 1]; ++k) {
        const std::uint32_t c = cols[k];
        const double sv = sr * vals[k] * sqrt_d[c];
        if (c == r) {
          s_diag[r] += sv;
        } else if (sv <= 0.0) {
          // Same fold as square(): keep the row sum exact.
          s_diag[r] += sv;
        } else if (c > r) {
          // One emission per unordered pair; both endpoint row sums take the
          // upper-triangle value, exactly like degree_vector over the dense
          // path's graph.
          offdiag_rowsum[r] += sv;
          offdiag_rowsum[c] += sv;
          ++product_edges;
          bu.push_back(static_cast<Vertex>(r));
          bv.push_back(c);
          bw.push_back(sv);
          if (bu.size() == options.batch_edges) flush();
        }
        // c < r with sv > 0: the (c, r) mirror emitted this pair already.
      }
    }
    rb = re;
  }
  flush();
  sparsify::StreamResult result = tower.finish();

  Vector new_slack = slack_from_rowsums(d, s_diag, offdiag_rowsum);

  if (stats != nullptr) {
    stats->input_edges = m.graph_part().num_edges();
    stats->output_edges = result.sparsifier.num_edges();
    stats->product_edges = product_edges;
    stats->projected_fill = total_fill;
    stats->row_blocks = row_blocks;
    stats->batches = result.report.batches;
    stats->sparsify_passes = result.report.sparsify_calls;
    stats->depth_planned = result.report.depth_planned;
    stats->depth_used = result.report.depth_used;
    stats->peak_resident_edges =
        result.report.peak_resident_edges + max_block_nnz + options.batch_edges;
    stats->epsilon_budget_used = result.report.epsilon_budget_used;
  }
  return SDDMatrix(std::move(result.sparsifier), std::move(new_slack));
}

std::size_t projected_square_fill(const SDDMatrix& m) {
  const CSRMatrix a = m.adjacency_csr();
  const std::vector<std::size_t> fill = a.multiply_fill_bound(a);
  std::size_t total = 0;
  for (const std::size_t f : fill) total += f;
  return total;
}

double adjacency_dominance(const SDDMatrix& m) {
  const Vector degree = linalg::degree_vector(m.graph_part());
  const Vector& d = m.diagonal();
  double gamma = 0.0;
  for (std::size_t i = 0; i < m.dimension(); ++i) {
    if (d[i] > 0.0) gamma = std::max(gamma, degree[i] / d[i]);
  }
  return gamma;
}

}  // namespace spar::solver
