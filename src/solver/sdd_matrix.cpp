#include "solver/sdd_matrix.hpp"

#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::solver {

using graph::Graph;
using linalg::CSRMatrix;
using linalg::Vector;

SDDMatrix::SDDMatrix(Graph laplacian_part)
    : SDDMatrix(std::move(laplacian_part), Vector{}) {}

SDDMatrix::SDDMatrix(Graph laplacian_part, Vector slack)
    : graph_(std::move(laplacian_part)), slack_(std::move(slack)) {
  if (slack_.empty()) slack_.assign(graph_.num_vertices(), 0.0);
  SPAR_CHECK(slack_.size() == graph_.num_vertices(), "SDDMatrix: slack size mismatch");
  for (double s : slack_) SPAR_CHECK(s >= 0.0, "SDDMatrix: slack must be nonnegative");
  diagonal_ = linalg::degree_vector(graph_);
  for (std::size_t i = 0; i < diagonal_.size(); ++i) diagonal_[i] += slack_[i];
}

bool SDDMatrix::is_singular() const {
  for (double s : slack_)
    if (s > 0.0) return false;
  return true;
}

void SDDMatrix::apply(std::span<const double> x, std::span<double> y) const {
  SPAR_CHECK(x.size() == dimension() && y.size() == dimension(),
             "SDDMatrix::apply: size mismatch");
  const linalg::LaplacianOperator lap(graph_);
  lap.apply(x, y);
  const auto n = static_cast<std::int64_t>(dimension());
  support::par::parallel_for(
      0, n, [&](std::int64_t i) { y[i] += slack_[i] * x[i]; },
      {.enable = n > (1 << 14)});
}

Vector SDDMatrix::apply(std::span<const double> x) const {
  Vector y(dimension());
  apply(x, y);
  return y;
}

void SDDMatrix::apply(const linalg::MultiVector& x, linalg::MultiVector& y) const {
  SPAR_CHECK(x.rows() == dimension() && y.rows() == dimension() &&
                 x.cols() == y.cols(),
             "SDDMatrix::apply: block shape mismatch");
  // Columns round trip through contiguous buffers and the scalar apply(), so
  // per-column results are bit-identical to single-vector applies (the
  // blocked-solve determinism contract). This is NOT the hot path of a
  // batched solve -- the chain preconditioner dominates -- so the gather /
  // scatter cost is acceptable.
  linalg::column_block_operator(as_operator()).apply(x, y);
}

linalg::LinearOperator SDDMatrix::as_operator() const {
  return {dimension(), [this](std::span<const double> x, std::span<double> y) {
            apply(x, y);
          }};
}

linalg::BlockOperator SDDMatrix::as_block_operator() const {
  return linalg::column_block_operator(as_operator());
}

double SDDMatrix::quadratic_form(std::span<const double> x) const {
  double q = linalg::laplacian_quadratic_form(graph_, x);
  for (std::size_t i = 0; i < dimension(); ++i) q += slack_[i] * x[i] * x[i];
  return q;
}

CSRMatrix SDDMatrix::adjacency_csr() const { return linalg::adjacency_matrix(graph_); }

CSRMatrix SDDMatrix::to_csr() const {
  CSRMatrix lap = linalg::laplacian_matrix(graph_);
  return lap.add(CSRMatrix::diagonal(slack_));
}

}  // namespace spar::solver
