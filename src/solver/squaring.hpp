// The Peng-Spielman squaring step: M = D - A  =>  M~ = D - A D^{-1} A.
//
// A D^{-1} A is computed by SpGEMM; its off-diagonal entries are nonnegative
// (new, denser adjacency -- vertices at hop distance 2 become neighbors) and
// its diagonal moves into the new slack, which stays nonnegative (and stays
// exactly zero for Laplacian inputs, so singular systems square to singular
// systems). This is the step whose fill-in the sparsifier must fight
// (Section 4: "the number of edges goes up by a factor of O(log n log^2 k)").
//
// Two ways to produce the square:
//
//  * square() materializes the exact product (fast for small fill, the
//    parity reference), then the chain sparsifies it after the fact.
//  * square_streamed() never materializes it: the product is emitted in
//    bounded row-blocks (CSRMatrix's row-range SpGEMM) and every block is
//    pushed straight into a sparsify::StreamSparsifier tower, so peak
//    resident memory is ~(tower sketches + one row-block) while the exact
//    slack is still accumulated entry-by-entry on the way past. The output's
//    graph part is already a certified (1 +- epsilon) sparsifier of the
//    product's graph part -- the fusion that breaks the fill-in cliff
//    (DESIGN.md "fused sparsify-during-squaring").
#pragma once

#include <cstdint>

#include "solver/sdd_matrix.hpp"
#include "support/work_counter.hpp"

namespace spar::solver {

/// Edge counts around one squaring step (the fill-in the sparsifier fights).
/// The streamed path also records its tower accounting; the dense path fills
/// only the fields its own doc mentions and leaves the tower ones zero.
struct SquaringStats {
  std::size_t input_edges = 0;   ///< graph-part edges of the input matrix
  std::size_t output_edges = 0;  ///< graph-part edges of the returned matrix
  /// Exact off-diagonal product edges emitted (streamed path; equals
  /// output_edges on the dense path, which drops nothing).
  std::size_t product_edges = 0;
  /// Symbolic fill upper bound the run planned with (streamed path).
  std::size_t projected_fill = 0;
  std::size_t row_blocks = 0;           ///< SpGEMM row-blocks produced (streamed)
  std::size_t batches = 0;              ///< tower batches pushed (streamed)
  std::size_t sparsify_passes = 0;      ///< tower reduce passes (streamed)
  std::size_t depth_planned = 0;        ///< tower budget depth planned (streamed)
  std::size_t depth_used = 0;           ///< tower budget depth used (streamed)
  /// ~Peak simultaneously resident edges: tower peak + the largest row-block
  /// + one emit buffer on the streamed path; the materialized product's nnz
  /// on the dense path. The number bench_chain compares across the two paths.
  std::size_t peak_resident_edges = 0;
  double epsilon_budget_used = 0.0;     ///< composed tower eps (streamed)
};

/// Returns M~ = D - A D^{-1} A as an SDDMatrix over the same vertex set.
/// Product entries that cancel to <= 0 (roundoff; reachable as underflow on
/// extreme weight ranges) are folded back into the diagonal instead of being
/// dropped, so D - A stays exactly the computed product.
SDDMatrix square(const SDDMatrix& m, SquaringStats* stats = nullptr);

/// Knobs for square_streamed: the tower budget (epsilon composes with the
/// chain's level_epsilon exactly like a posthoc sparsify call would -- the
/// tower splits it internally, see sparsify/stream.hpp) and the two memory
/// granularities (row-block fill and tower batch size).
struct StreamedSquareOptions {
  double epsilon = 0.5;     ///< end-to-end eps of the fused sparsifier
  double rho = 4.0;         ///< per-reduce sparsification factor
  std::size_t t = 2;        ///< per-round bundle width (0 = theory value)
  std::uint64_t seed = 99;  ///< seeds the tower's per-pass coins
  /// Tower batch granularity (edges); the unit of ingest memory.
  std::size_t batch_edges = std::size_t{1} << 17;
  /// Tower resident-level cap: peak ~ (cap sketches + 1 batch + 1 row-block).
  std::size_t max_resident_levels = 3;
  /// Target symbolic fill per SpGEMM row-block: the resident-product unit.
  std::size_t block_fill_edges = std::size_t{1} << 20;
  support::WorkCounter* work = nullptr;  ///< optional work accounting sink
};

/// M~ = D - A D^{-1} A with the graph part sparsified *while being produced*:
/// row-blocks of the product stream through a merge-and-reduce tower, the
/// exact product is never resident, and the slack is computed from the exact
/// (pre-sparsification) row sums so it equals square()'s slack up to
/// summation-order roundoff. Deterministic for a fixed (seed, batch_edges,
/// block_fill_edges) across thread counts and OpenMP on/off.
SDDMatrix square_streamed(const SDDMatrix& m, const StreamedSquareOptions& options,
                          SquaringStats* stats = nullptr);

/// Symbolic upper bound on the fill of A D^{-1} A for m's adjacency: the
/// Gustavson expansion count before duplicate merging, O(nnz) to compute.
/// This is the number the chain's guard and auto mode act on BEFORE any
/// product memory is committed.
std::size_t projected_square_fill(const SDDMatrix& m);

/// Convergence measure for the chain: gamma(M) = max_i (sum_j A_ij) / D_ii.
/// Squaring drives gamma -> gamma^2-ish; the chain terminates once
/// gamma <= threshold, where a diagonal/Jacobi solve is accurate.
double adjacency_dominance(const SDDMatrix& m);

}  // namespace spar::solver
