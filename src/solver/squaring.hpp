// The Peng-Spielman squaring step: M = D - A  =>  M~ = D - A D^{-1} A.
//
// A D^{-1} A is computed by SpGEMM; its off-diagonal entries are nonnegative
// (new, denser adjacency -- vertices at hop distance 2 become neighbors) and
// its diagonal moves into the new slack, which stays nonnegative (and stays
// exactly zero for Laplacian inputs, so singular systems square to singular
// systems). This is the step whose fill-in the sparsifier must fight
// (Section 4: "the number of edges goes up by a factor of O(log n log^2 k)").
#pragma once

#include "solver/sdd_matrix.hpp"

namespace spar::solver {

/// Edge counts around one squaring step (the fill-in the sparsifier fights).
struct SquaringStats {
  std::size_t input_edges = 0;   ///< graph-part edges of the input matrix
  std::size_t output_edges = 0;  ///< graph-part edges of D - A D^{-1} A
};

/// Returns M~ = D - A D^{-1} A as an SDDMatrix over the same vertex set.
SDDMatrix square(const SDDMatrix& m, SquaringStats* stats = nullptr);

/// Convergence measure for the chain: gamma(M) = max_i (sum_j A_ij) / D_ii.
/// Squaring drives gamma -> gamma^2-ish; the chain terminates once
/// gamma <= threshold, where a diagonal/Jacobi solve is accurate.
double adjacency_dominance(const SDDMatrix& m);

}  // namespace spar::solver
