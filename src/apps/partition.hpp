// Spectral partitioning riding the solver stack (the "Laplacian paradigm"
// application from the paper's introduction, grown into a real workload).
//
// The Fiedler pair (lambda_2, v_2) of a connected graph Laplacian is computed
// by BLOCK INVERSE-POWER iteration: a block of k mean-free vectors is
// repeatedly mapped through L^+ (each step is ONE batched chain-PCG call,
// solver/solve_sdd_multi, against a single resident InverseChain built once
// and reused across every iteration), re-orthonormalized, and refined by a
// dense k-by-k Rayleigh-Ritz projection (linalg/rayleigh_ritz). Deflation
// against the constant nullspace is explicit: every iterate is mean-removed,
// so the iteration converges to the smallest NONZERO eigenpair. A shifted
// Rayleigh-quotient variant falls out for free: once the Ritz value
// stabilizes, the chain solve of L (shift 0) still amplifies 1/lambda_2
// fastest among the deflated spectrum, and the Ritz projection supplies the
// quotient.
//
// The sweep cut then scans the Fiedler order: vertices sorted by coordinate,
// prefix by prefix, tracking conductance phi(S) = w(cut(S)) / min(vol(S),
// vol(V \ S)) incrementally; the best prefix is the returned partition
// (Cheeger's guarantee applies to this rounding).
//
// Determinism contract (the PR 1/2 discipline): every reduction runs through
// the chunk-ordered substrate, the solve path is bit-identical across thread
// counts by the solve_sdd_multi contract, the dense Rayleigh-Ritz work is
// order-fixed, and the returned vector is sign-fixed (first entry of largest
// magnitude made positive) -- so Fiedler vectors, values, and sweep cuts are
// bit-identical at any thread count and in the OpenMP-off build
// (tests/apps/test_partition.cpp pins golden hashes).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.hpp"
#include "solver/solver.hpp"

namespace spar::apps {

/// Knobs of the block inverse-power Fiedler solver.
struct FiedlerOptions {
  /// Block width k of the inverse-power subspace (>= 1). Width 2 separates
  /// lambda_2 from lambda_3 via the Rayleigh-Ritz projection, which is what
  /// makes the iteration robust on near-degenerate spectra (grids).
  std::size_t block = 2;
  /// Outer inverse-power iterations (each is one batched chain solve).
  std::size_t max_iterations = 48;
  /// Stop when the Fiedler pair's relative eigenresidual
  /// ||L v - theta v|| / (theta ||v||) drops below this.
  double tolerance = 1e-8;
  /// Inner batched solve (tolerance, iteration cap, chain construction).
  /// The default chain knobs mirror sparsify_tool's --solve-rhs path.
  solver::SolveOptions solve;
  std::uint64_t seed = 11;  ///< seeds the starting block

  /// Defaults tighten the inner solve and chain against the app's needs.
  FiedlerOptions() {
    solve.tolerance = 1e-10;
    solve.chain.max_levels = 10;
    solve.chain.rho = 8.0;
    solve.chain.t = 1;
  }
};

/// Outcome of the Fiedler computation.
struct FiedlerReport {
  linalg::Vector vector;      ///< sign-fixed unit Fiedler vector
  double value = 0.0;         ///< Ritz estimate of lambda_2
  double value_next = 0.0;    ///< Ritz estimate of lambda_3 (0 when block < 2)
  std::size_t iterations = 0; ///< inverse-power steps run
  bool converged = false;     ///< eigenresidual met tolerance
  double residual = 0.0;      ///< achieved ||L v - theta v|| / theta
  std::size_t chain_levels = 0;    ///< levels of the resident chain used
  std::size_t chain_total_nnz = 0; ///< stored nonzeros across that chain
};

/// Fiedler pair of connected graph `g`: builds the SDD matrix and one
/// resident inverse chain internally, then iterates. Throws spar::Error on
/// disconnected inputs (extract the largest component first).
FiedlerReport fiedler_vector(const graph::Graph& g, const FiedlerOptions& options = {});

/// Same iteration against a caller-owned matrix and resident chain (the full
/// amortization: one chain serves every inverse-power step, and can be shared
/// with other workloads of the same graph). `m` must be the singular
/// Laplacian SDDMatrix of a connected graph and `chain` built from it.
FiedlerReport fiedler_vector(const solver::SDDMatrix& m,
                             const solver::InverseChain& chain,
                             const FiedlerOptions& options = {});

/// One side of a sweep-cut partition with its quality numbers.
struct SweepCutResult {
  std::vector<bool> side;   ///< side[v] true = v in S (the chosen prefix)
  double conductance = 1.0; ///< w(cut) / min(vol(S), vol(V\S))
  std::size_t cut_size = 0; ///< |S| (vertices in the chosen prefix)
  double cut_weight = 0.0;  ///< total weight crossing the cut
  double volume_s = 0.0;    ///< sum of weighted degrees inside S
  double volume_rest = 0.0; ///< sum of weighted degrees outside S
};

/// Best conductance prefix of the vertices ordered by `score` (descending,
/// ties by vertex id): the standard sweep-cut rounding of a Fiedler vector.
/// Requires score.size() == g.num_vertices() and n >= 2; the returned side is
/// never empty or full. Deterministic: the order and the scan are pure
/// functions of (g, score).
SweepCutResult sweep_cut(const graph::Graph& g, std::span<const double> score);

/// Conductance of a fixed bipartition: w(cut) / min(vol true-side, vol
/// false-side); 1.0 when either side has zero volume. Chunk-ordered
/// deterministic reduction over the edge list.
double conductance(const graph::Graph& g, const std::vector<bool>& side);

/// Everything spectral_partition reports: the Fiedler pair plus its sweep cut.
struct PartitionReport {
  FiedlerReport fiedler;  ///< the computed Fiedler pair
  SweepCutResult cut;     ///< sweep-cut rounding of fiedler.vector
};

/// Fiedler vector + sweep cut of connected `g` in one call.
PartitionReport spectral_partition(const graph::Graph& g,
                                   const FiedlerOptions& options = {});

/// Chain-reusing variant: `g` must be the graph `m` and `chain` were built
/// from (the sweep cut needs the edge list; the solves use the chain).
PartitionReport spectral_partition(const graph::Graph& g, const solver::SDDMatrix& m,
                                   const solver::InverseChain& chain,
                                   const FiedlerOptions& options = {});

}  // namespace spar::apps
