#include "apps/task_quality.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "graph/traversal.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::apps {

using linalg::Vector;

namespace {

// Effective resistances of a fixed pair list: one batched solve against the
// resident chain, R(u, v) = (e_u - e_v)^T L^+ (e_u - e_v) = x[u] - x[v].
Vector pair_resistances(const solver::SDDMatrix& m, const solver::InverseChain& chain,
                        const std::vector<std::pair<graph::Vertex, graph::Vertex>>& pairs,
                        const solver::SolveOptions& options) {
  std::vector<Vector> rhs(pairs.size(), Vector(m.dimension(), 0.0));
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    rhs[i][pairs[i].first] = 1.0;
    rhs[i][pairs[i].second] = -1.0;
  }
  const solver::MultiSolveReport solve =
      solver::solve_sdd_multi(m, chain, linalg::MultiVector::from_columns(rhs), options);
  Vector out(pairs.size());
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    const Vector x = solve.solutions.column_copy(i);
    out[i] = x[pairs[i].first] - x[pairs[i].second];
  }
  return out;
}

}  // namespace

TaskQualityReport evaluate_on_tasks(const graph::Graph& g, const graph::Graph& h,
                                    const TaskQualityOptions& options) {
  const std::size_t n = g.num_vertices();
  SPAR_CHECK(h.num_vertices() == n,
             "evaluate_on_tasks: graphs must share a vertex set");
  SPAR_CHECK(n >= 2, "evaluate_on_tasks: need at least 2 vertices");
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "evaluate_on_tasks: original graph must be connected");
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(h)),
             "evaluate_on_tasks: sparsifier must be connected");

  // One resident chain per graph; every solve below (Fiedler iterations and
  // resistance probes alike) rides the same two chains.
  const solver::SDDMatrix mg{graph::Graph(g)};
  const solver::InverseChain chain_g(mg, options.fiedler.solve.chain);
  const solver::SDDMatrix mh{graph::Graph(h)};
  const solver::InverseChain chain_h(mh, options.fiedler.solve.chain);

  TaskQualityReport report;

  // Partitioning app.
  const PartitionReport part_g = spectral_partition(g, mg, chain_g, options.fiedler);
  const PartitionReport part_h = spectral_partition(h, mh, chain_h, options.fiedler);
  report.fiedler_value_g = part_g.fiedler.value;
  report.fiedler_value_h = part_h.fiedler.value;
  report.conductance_g = part_g.cut.conductance;
  report.conductance_h = part_h.cut.conductance;
  report.cross_conductance = conductance(g, part_h.cut.side);

  // PageRank app.
  const PageRankReport pr_g = pagerank(g, options.pagerank);
  const PageRankReport pr_h = pagerank(h, options.pagerank);
  report.spearman = spearman_correlation(pr_g.scores, pr_h.scores);
  report.top_k_overlap = apps::top_k_overlap(pr_g.scores, pr_h.scores, options.top_k);
  double l1 = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    l1 += std::abs(pr_g.scores[i] - pr_h.scores[i]);
  report.pagerank_l1_delta = l1;

  // Resistance probes: random pairs, batched through both chains.
  if (options.resistance_pairs > 0) {
    std::vector<std::pair<graph::Vertex, graph::Vertex>> pairs;
    pairs.reserve(options.resistance_pairs);
    support::Rng rng(support::mix64(options.seed, 0x9a125ULL));
    while (pairs.size() < options.resistance_pairs) {
      const auto u = static_cast<graph::Vertex>(rng.below(n));
      const auto v = static_cast<graph::Vertex>(rng.below(n));
      if (u != v) pairs.emplace_back(u, v);
    }
    const Vector rg = pair_resistances(mg, chain_g, pairs, options.fiedler.solve);
    const Vector rh = pair_resistances(mh, chain_h, pairs, options.fiedler.solve);
    report.min_resistance_ratio = std::numeric_limits<double>::infinity();
    report.max_resistance_ratio = 0.0;
    for (std::size_t i = 0; i < pairs.size(); ++i) {
      SPAR_CHECK(rg[i] > 0.0, "evaluate_on_tasks: nonpositive probe resistance");
      const double ratio = rh[i] / rg[i];
      report.min_resistance_ratio = std::min(report.min_resistance_ratio, ratio);
      report.max_resistance_ratio = std::max(report.max_resistance_ratio, ratio);
    }
  }
  return report;
}

double spearman_correlation(const Vector& a, const Vector& b) {
  const std::size_t n = a.size();
  SPAR_CHECK(b.size() == n, "spearman_correlation: size mismatch");
  SPAR_CHECK(n >= 2, "spearman_correlation: need at least 2 entries");
  const std::vector<graph::Vertex> order_a = ranking(a);
  const std::vector<graph::Vertex> order_b = ranking(b);
  std::vector<std::size_t> rank_a(n), rank_b(n);
  for (std::size_t pos = 0; pos < n; ++pos) {
    rank_a[order_a[pos]] = pos;
    rank_b[order_b[pos]] = pos;
  }
  double sum_d2 = 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    const double d =
        static_cast<double>(rank_a[v]) - static_cast<double>(rank_b[v]);
    sum_d2 += d * d;
  }
  const double nn = static_cast<double>(n);
  return 1.0 - 6.0 * sum_d2 / (nn * (nn * nn - 1.0));
}

double top_k_overlap(const Vector& a, const Vector& b, std::size_t k) {
  const std::size_t n = a.size();
  SPAR_CHECK(b.size() == n, "top_k_overlap: size mismatch");
  SPAR_CHECK(n >= 1 && k >= 1, "top_k_overlap: need nonempty input and k >= 1");
  k = std::min(k, n);
  const std::vector<graph::Vertex> order_a = ranking(a);
  const std::vector<graph::Vertex> order_b = ranking(b);
  std::vector<bool> in_a(n, false);
  for (std::size_t pos = 0; pos < k; ++pos) in_a[order_a[pos]] = true;
  std::size_t hits = 0;
  for (std::size_t pos = 0; pos < k; ++pos)
    if (in_a[order_b[pos]]) ++hits;
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace spar::apps
