// PageRank and personalized PageRank over the repo's CSR substrate.
//
// Power iteration on the undirected random walk: with A the weighted
// adjacency matrix, D the weighted degree diagonal and t the teleport
// distribution,
//
//   x' = d * A (x / deg) + (d * dangling(x) + (1 - d)) * t
//
// where dangling(x) is the probability mass sitting on degree-zero vertices
// (it has nowhere to walk, so it teleports). Global PageRank uses the uniform
// teleport t = 1/n; PERSONALIZED PageRank restricts t to a source set, which
// localizes the stationary mass around those sources. Every step is one SpMV
// on the existing CSRMatrix kernel plus chunk-ordered elementwise work, so
// scores are bit-identical across thread counts and in the OpenMP-off build
// (the PR 1/2 discipline; tests/apps/test_pagerank.cpp pins golden hashes).
//
// The iteration map is a contraction with factor d in l1, so the l1 change
// per step both bounds the distance to the fixed point (within d/(1-d)) and
// decides convergence.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::apps {

/// Knobs of the PageRank power iteration.
struct PageRankOptions {
  /// Walk probability d (teleport probability 1 - d).
  double damping = 0.85;
  /// Stop when the l1 change of the score vector drops below this. The map
  /// contracts with factor d in l1, so 1e-13 here pins the fixed point well
  /// below the 1e-12 oracle comparison in tests/apps.
  double tolerance = 1e-13;
  /// Power iteration cap (the contraction makes ~200 ample for d = 0.85).
  std::size_t max_iterations = 400;
  /// Teleport support: empty = uniform over all vertices (global PageRank);
  /// otherwise teleport mass is split uniformly over these vertices
  /// (personalized PageRank). Duplicates accumulate. Must be valid ids.
  std::vector<graph::Vertex> sources;
};

/// Outcome of a PageRank run.
struct PageRankReport {
  linalg::Vector scores;       ///< stationary distribution (sums to 1)
  std::size_t iterations = 0;  ///< power steps run
  bool converged = false;      ///< l1 change met tolerance
  double delta = 0.0;          ///< achieved final l1 change
};

/// (Personalized) PageRank of `g` by deterministic power iteration. Works on
/// any graph, connected or not (degree-zero vertices contribute their mass
/// through the teleport). Bit-identical across thread counts.
PageRankReport pagerank(const graph::Graph& g, const PageRankOptions& options = {});

/// Vertices sorted by descending score, ties broken by vertex id -- the
/// canonical ranking used for rank-correlation / top-k comparisons in the
/// quality-on-task evaluation. Deterministic total order.
std::vector<graph::Vertex> ranking(const linalg::Vector& scores);

}  // namespace spar::apps
