#include "apps/pagerank.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::apps {

using linalg::Vector;

PageRankReport pagerank(const graph::Graph& g, const PageRankOptions& options) {
  const std::size_t n = g.num_vertices();
  SPAR_CHECK(n >= 1, "pagerank: need at least one vertex");
  SPAR_CHECK(options.damping > 0.0 && options.damping < 1.0,
             "pagerank: damping must be in (0, 1)");
  const double d = options.damping;

  // Teleport distribution: uniform, or uniform over the source multiset.
  Vector teleport(n, 0.0);
  if (options.sources.empty()) {
    const double u = 1.0 / static_cast<double>(n);
    for (double& x : teleport) x = u;
  } else {
    const double u = 1.0 / static_cast<double>(options.sources.size());
    for (const graph::Vertex s : options.sources) {
      SPAR_CHECK(s < n, "pagerank: source vertex out of range");
      teleport[s] += u;
    }
  }

  const linalg::CSRMatrix a = linalg::adjacency_matrix(g);
  const Vector deg = linalg::degree_vector(g);
  const auto size = static_cast<std::int64_t>(n);

  Vector x = teleport;  // start at the teleport distribution
  Vector walk(n), spmv(n), next(n);
  PageRankReport report;

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // walk = x / deg on walking vertices; degree-zero mass is collected
    // separately and re-injected through the teleport below.
    support::par::parallel_for(0, size, [&](std::int64_t i) {
      walk[static_cast<std::size_t>(i)] =
          deg[static_cast<std::size_t>(i)] > 0.0
              ? x[static_cast<std::size_t>(i)] / deg[static_cast<std::size_t>(i)]
              : 0.0;
    });
    const double dangling = support::par::parallel_reduce(
        0, size, 0.0,
        [&](std::int64_t cb, std::int64_t ce) {
          double acc = 0.0;
          for (std::int64_t i = cb; i < ce; ++i)
            if (deg[static_cast<std::size_t>(i)] == 0.0)
              acc += x[static_cast<std::size_t>(i)];
          return acc;
        },
        std::plus<>());
    a.multiply(walk, spmv);
    const double teleport_scale = d * dangling + (1.0 - d);
    support::par::parallel_for(0, size, [&](std::int64_t i) {
      const auto u = static_cast<std::size_t>(i);
      next[u] = d * spmv[u] + teleport_scale * teleport[u];
    });

    report.delta = support::par::parallel_reduce(
        0, size, 0.0,
        [&](std::int64_t cb, std::int64_t ce) {
          double acc = 0.0;
          for (std::int64_t i = cb; i < ce; ++i)
            acc += std::abs(next[static_cast<std::size_t>(i)] -
                            x[static_cast<std::size_t>(i)]);
          return acc;
        },
        std::plus<>());
    x.swap(next);
    report.iterations = iter;
    if (report.delta <= options.tolerance) {
      report.converged = true;
      break;
    }
  }

  report.scores = std::move(x);
  return report;
}

std::vector<graph::Vertex> ranking(const Vector& scores) {
  std::vector<graph::Vertex> order(scores.size());
  std::iota(order.begin(), order.end(), graph::Vertex{0});
  std::sort(order.begin(), order.end(), [&](graph::Vertex a, graph::Vertex b) {
    if (scores[a] != scores[b]) return scores[a] > scores[b];
    return a < b;
  });
  return order;
}

}  // namespace spar::apps
