// Sparsifier quality-on-task: judge a sparsifier by what downstream
// workloads see, not only by its pencil certificate.
//
// Given the original graph G and a sparsifier H (static parallel_sparsify
// output or a DynamicSparsifier checkpoint), run the application layer on
// both and report the deltas that matter to each app:
//  * spectral partitioning -- Fiedler values, the conductance of each graph's
//    own sweep cut, and the CROSS conductance (H's cut evaluated on G): a
//    good sparsifier's cut must be a good cut of the original graph;
//  * PageRank -- Spearman rank correlation, top-k overlap and l1 distance of
//    the score vectors;
//  * effective-resistance pair probes -- min/max of R_H(u,v) / R_G(u,v) over
//    random vertex pairs, the quantity the (1 +- eps) pencil bound directly
//    controls.
//
// One resident InverseChain per graph serves BOTH the Fiedler iterations and
// the batched resistance probes (the chain-reuse amortization the solver
// subsystem provides); everything downstream inherits the deterministic
// chunk-ordered substrate, so the report is bit-identical across thread
// counts. tests/apps/test_task_quality.cpp turns the conductance and
// resistance columns into regression bounds against certified epsilons.
#pragma once

#include <cstdint>

#include "apps/pagerank.hpp"
#include "apps/partition.hpp"

namespace spar::apps {

/// Knobs of the quality-on-task evaluation.
struct TaskQualityOptions {
  FiedlerOptions fiedler;        ///< partitioning app (shared by G and H)
  PageRankOptions pagerank;      ///< PageRank app (shared by G and H)
  std::size_t top_k = 10;        ///< overlap window for the PageRank ranking
  std::size_t resistance_pairs = 8;  ///< random (u, v) probes; 0 disables
  std::uint64_t seed = 7;        ///< seeds the probe pair sampling
};

/// Everything evaluate_on_tasks measures. "g" columns come from the original
/// graph, "h" columns from the sparsifier.
struct TaskQualityReport {
  double fiedler_value_g = 0.0;  ///< lambda_2 estimate on G
  double fiedler_value_h = 0.0;  ///< lambda_2 estimate on H
  double conductance_g = 0.0;    ///< G's sweep cut evaluated on G
  double conductance_h = 0.0;    ///< H's sweep cut evaluated on H
  /// H's sweep-cut side evaluated on G: the number a user of the sparsifier
  /// actually obtains. Compare against conductance_g.
  double cross_conductance = 0.0;
  double spearman = 0.0;         ///< rank correlation of PageRank scores
  double top_k_overlap = 0.0;    ///< |top-k(G) cap top-k(H)| / k
  double pagerank_l1_delta = 0.0;///< ||scores_G - scores_H||_1
  double min_resistance_ratio = 0.0;  ///< min R_H / R_G over probes
  double max_resistance_ratio = 0.0;  ///< max R_H / R_G over probes
};

/// Run the application layer on `g` and sparsifier `h` (same vertex set,
/// both connected) and report the task-level deltas. Builds one resident
/// chain per graph and reuses it across all solves for that graph.
TaskQualityReport evaluate_on_tasks(const graph::Graph& g, const graph::Graph& h,
                                    const TaskQualityOptions& options = {});

/// Spearman rank correlation of two score vectors: scores are converted to
/// ranks by the canonical `ranking()` order (descending score, ties by
/// vertex id -- NOT tie-averaged) and the permutation-distance formula
/// 1 - 6 sum d^2 / (n (n^2 - 1)) is applied. 1.0 for identical rankings;
/// requires equal sizes >= 2.
double spearman_correlation(const linalg::Vector& a, const linalg::Vector& b);

/// |top-k(a) cap top-k(b)| / k under the canonical ranking order, with k
/// clamped to the vector size. Requires equal sizes >= 1.
double top_k_overlap(const linalg::Vector& a, const linalg::Vector& b,
                     std::size_t k);

}  // namespace spar::apps
