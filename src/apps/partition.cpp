#include "apps/partition.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "linalg/dense.hpp"
#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::apps {

using linalg::Vector;

namespace {

// Modified Gram-Schmidt over a small set of long vectors. Serial over the
// O(k^2) pair loop; each dot/axpy is the chunk-ordered deterministic
// primitive, so the output basis is thread-count independent.
void orthonormalize(std::vector<Vector>& v) {
  for (std::size_t j = 0; j < v.size(); ++j) {
    for (std::size_t i = 0; i < j; ++i) {
      const double alpha = linalg::dot(v[i], v[j]);
      linalg::axpy(-alpha, v[i], v[j]);
    }
    const double nrm = linalg::norm2(v[j]);
    SPAR_CHECK(nrm > 0.0, "fiedler_vector: inverse-power block collapsed");
    linalg::scale(1.0 / nrm, v[j]);
  }
}

// Canonical sign: the first entry of largest magnitude is made positive, so
// the +-v ambiguity of an eigenvector never leaks into hashes or sweep cuts.
void sign_fix(Vector& v) {
  std::size_t arg = 0;
  for (std::size_t i = 1; i < v.size(); ++i)
    if (std::abs(v[i]) > std::abs(v[arg])) arg = i;
  if (v[arg] < 0.0)
    for (double& x : v) x = -x;
}

struct CutVolumes {
  double cut = 0.0;
  double vol_s = 0.0;
  double vol_rest = 0.0;
};

CutVolumes cut_volumes(const graph::Graph& g, const std::vector<bool>& side) {
  const auto edges = g.edges();
  return support::par::parallel_reduce(
      0, static_cast<std::int64_t>(edges.size()), CutVolumes{},
      [&](std::int64_t cb, std::int64_t ce) {
        CutVolumes acc;
        for (std::int64_t i = cb; i < ce; ++i) {
          const auto& e = edges[static_cast<std::size_t>(i)];
          const bool su = side[e.u];
          const bool sv = side[e.v];
          if (su != sv) acc.cut += e.w;
          (su ? acc.vol_s : acc.vol_rest) += e.w;
          (sv ? acc.vol_s : acc.vol_rest) += e.w;
        }
        return acc;
      },
      [](CutVolumes a, const CutVolumes& b) {
        a.cut += b.cut;
        a.vol_s += b.vol_s;
        a.vol_rest += b.vol_rest;
        return a;
      });
}

}  // namespace

FiedlerReport fiedler_vector(const solver::SDDMatrix& m,
                             const solver::InverseChain& chain,
                             const FiedlerOptions& options) {
  const std::size_t n = m.dimension();
  SPAR_CHECK(n >= 2, "fiedler_vector: need at least 2 vertices");
  SPAR_CHECK(m.is_singular(),
             "fiedler_vector: expected a pure graph Laplacian (no slack)");
  const std::size_t k = std::clamp<std::size_t>(options.block, 1, n - 1);

  // Seeded mean-free starting block; per-column generators, serial fills.
  std::vector<Vector> v(k);
  for (std::size_t j = 0; j < k; ++j) {
    support::Rng rng(support::mix64(options.seed, 0xf1ed1e8ULL + j));
    v[j].resize(n);
    for (double& x : v[j]) x = rng.normal();
    linalg::remove_mean(v[j]);
  }
  orthonormalize(v);

  FiedlerReport report;
  report.chain_levels = chain.num_levels();
  report.chain_total_nnz = chain.total_nnz();
  Vector image(n);

  for (std::size_t iter = 1; iter <= options.max_iterations; ++iter) {
    // One batched chain-PCG solve maps the whole block through L^+ (the
    // resident chain is reused across every iteration -- the amortization
    // the batched solver subsystem exists for).
    const solver::MultiSolveReport solve = solver::solve_sdd_multi(
        m, chain, linalg::MultiVector::from_columns(v), options.solve);
    for (std::size_t j = 0; j < k; ++j) {
      v[j] = solve.solutions.column_copy(j);
      // Deflation: re-project against the constant nullspace every step so
      // roundoff can never re-grow a component along 1.
      linalg::remove_mean(v[j]);
    }
    orthonormalize(v);

    // Dense Rayleigh-Ritz refinement of the k-dimensional subspace.
    linalg::DenseMatrix q(n, k), aq(n, k);
    for (std::size_t j = 0; j < k; ++j) {
      linalg::copy(v[j], q.column(j));
      m.apply(v[j], image);
      linalg::copy(image, aq.column(j));
    }
    const linalg::RayleighRitz rr = linalg::rayleigh_ritz(q, aq);
    for (std::size_t j = 0; j < k; ++j) {
      const auto col = rr.basis.column(j);
      v[j].assign(col.begin(), col.end());
    }
    report.value = rr.values[0];
    report.value_next = k > 1 ? rr.values[1] : 0.0;
    report.iterations = iter;

    // Eigenresidual of the leading Ritz pair decides convergence.
    m.apply(v[0], image);
    linalg::axpy(-report.value, v[0], image);
    report.residual =
        linalg::norm2(image) / std::max(report.value * linalg::norm2(v[0]), 1e-300);
    if (report.residual <= options.tolerance) {
      report.converged = true;
      break;
    }
  }

  sign_fix(v[0]);
  report.vector = std::move(v[0]);
  return report;
}

FiedlerReport fiedler_vector(const graph::Graph& g, const FiedlerOptions& options) {
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "fiedler_vector: graph must be connected");
  const solver::SDDMatrix m{graph::Graph(g)};
  const solver::InverseChain chain(m, options.solve.chain);
  return fiedler_vector(m, chain, options);
}

SweepCutResult sweep_cut(const graph::Graph& g, std::span<const double> score) {
  const std::size_t n = g.num_vertices();
  SPAR_CHECK(n >= 2, "sweep_cut: need at least 2 vertices");
  SPAR_CHECK(score.size() == n, "sweep_cut: score/vertex count mismatch");

  std::vector<graph::Vertex> order(n);
  std::iota(order.begin(), order.end(), graph::Vertex{0});
  std::sort(order.begin(), order.end(), [&](graph::Vertex a, graph::Vertex b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;  // total order: ties broken by vertex id
  });

  const graph::CSRGraph csr(g);
  const Vector deg = linalg::degree_vector(g);
  const double total_vol = 2.0 * g.total_weight();

  // Incremental prefix scan: moving v into S flips its arcs' cut status and
  // adds its weighted degree to vol(S). The scan order is fixed, so the
  // floating-point trajectory (and the argmin) is deterministic.
  std::vector<bool> in_s(n, false);
  double cut = 0.0, vol_s = 0.0;
  double best_phi = std::numeric_limits<double>::infinity();
  std::size_t best_prefix = 1;
  for (std::size_t pos = 0; pos + 1 < n; ++pos) {
    const graph::Vertex v = order[pos];
    for (const graph::Arc& arc : csr.neighbors(v))
      cut += in_s[arc.to] ? -arc.w : arc.w;
    in_s[v] = true;
    vol_s += deg[v];
    const double denom = std::min(vol_s, total_vol - vol_s);
    if (denom <= 0.0) continue;
    const double phi = cut / denom;
    if (phi < best_phi) {
      best_phi = phi;
      best_prefix = pos + 1;
    }
  }

  SweepCutResult result;
  result.side.assign(n, false);
  for (std::size_t pos = 0; pos < best_prefix; ++pos) result.side[order[pos]] = true;
  result.cut_size = best_prefix;
  // Report exact (recomputed) numbers for the chosen side; the incremental
  // values steered the argmin but carry accumulated cancellation.
  const CutVolumes cv = cut_volumes(g, result.side);
  result.cut_weight = cv.cut;
  result.volume_s = cv.vol_s;
  result.volume_rest = cv.vol_rest;
  const double denom = std::min(cv.vol_s, cv.vol_rest);
  result.conductance = denom > 0.0 ? cv.cut / denom : 1.0;
  return result;
}

double conductance(const graph::Graph& g, const std::vector<bool>& side) {
  SPAR_CHECK(side.size() == g.num_vertices(), "conductance: side/vertex mismatch");
  const CutVolumes cv = cut_volumes(g, side);
  const double denom = std::min(cv.vol_s, cv.vol_rest);
  return denom > 0.0 ? cv.cut / denom : 1.0;
}

PartitionReport spectral_partition(const graph::Graph& g, const solver::SDDMatrix& m,
                                   const solver::InverseChain& chain,
                                   const FiedlerOptions& options) {
  PartitionReport report;
  report.fiedler = fiedler_vector(m, chain, options);
  report.cut = sweep_cut(g, report.fiedler.vector);
  return report;
}

PartitionReport spectral_partition(const graph::Graph& g,
                                   const FiedlerOptions& options) {
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "spectral_partition: graph must be connected");
  const solver::SDDMatrix m{graph::Graph(g)};
  const solver::InverseChain chain(m, options.solve.chain);
  return spectral_partition(g, m, chain, options);
}

}  // namespace spar::apps
