#include "spanner/baswana_sen.hpp"

#include <algorithm>
#include <cmath>

#include <omp.h>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::spanner {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

enum class EdgeState : std::uint8_t { kDead = 0, kAlive = 1, kSpanner = 2 };

// Deterministic tie-break for "lightest": (length, edge id) lexicographic.
struct Light {
  double len = 0.0;
  EdgeId id = graph::kInvalidEdge;

  bool operator<(const Light& other) const {
    if (len != other.len) return len < other.len;
    return id < other.id;
  }
};

// Per-thread scratch for grouping a vertex's alive arcs by adjacent cluster
// with the timestamp trick (O(deg) per vertex, no hashing).
struct ClusterScratch {
  std::vector<Vertex> stamp;       // stamp[c] == token  <=>  entry valid
  std::vector<Light> best;         // lightest arc to cluster c
  std::vector<Vertex> touched;     // clusters seen for current vertex
  Vertex token = kInvalidVertex;

  explicit ClusterScratch(std::size_t n)
      : stamp(n, kInvalidVertex), best(n) {}

  void begin(Vertex v) {
    token = v;
    touched.clear();
  }

  void offer(Vertex cluster, Light candidate) {
    if (stamp[cluster] != token) {
      stamp[cluster] = token;
      best[cluster] = candidate;
      touched.push_back(cluster);
    } else if (candidate < best[cluster]) {
      best[cluster] = candidate;
    }
  }
};

// Decisions each thread accumulates, committed after the parallel region.
struct Decisions {
  std::vector<EdgeId> discard;
  std::vector<EdgeId> add;
};

void commit(std::vector<Decisions>& per_thread, std::vector<EdgeState>& state,
            std::vector<EdgeId>& spanner_edges) {
  // Discards first, then spanner marks: an edge both discarded (by one
  // endpoint) and selected (by the other) must stay -- keeping extra edges
  // never hurts stretch, and Baswana-Sen's analysis adds it.
  for (const Decisions& d : per_thread)
    for (EdgeId id : d.discard) state[id] = EdgeState::kDead;
  std::vector<EdgeId> adds;
  for (const Decisions& d : per_thread)
    adds.insert(adds.end(), d.add.begin(), d.add.end());
  std::sort(adds.begin(), adds.end());  // deterministic output order
  for (EdgeId id : adds) {
    if (state[id] != EdgeState::kSpanner) {
      state[id] = EdgeState::kSpanner;
      spanner_edges.push_back(id);
    }
  }
  for (Decisions& d : per_thread) {
    d.discard.clear();
    d.add.clear();
  }
}

}  // namespace

std::size_t auto_spanner_k(std::size_t n) {
  if (n <= 2) return 1;
  std::size_t k = 1;
  while ((std::size_t{1} << k) < n) ++k;  // k = ceil(log2 n)
  return k;
}

std::vector<EdgeId> baswana_sen_spanner(const CSRGraph& csr,
                                        const std::vector<bool>* alive,
                                        const SpannerOptions& options) {
  const Vertex n = csr.num_vertices();
  const std::size_t m = csr.num_arcs() / 2;
  const std::size_t k = options.k != 0 ? options.k : auto_spanner_k(n);
  support::WorkScope work(options.work);

  std::vector<EdgeState> state(m, EdgeState::kDead);
  if (alive != nullptr) {
    SPAR_CHECK(alive->size() == m, "baswana_sen_spanner: alive mask size mismatch");
    for (std::size_t id = 0; id < m; ++id)
      if ((*alive)[id]) state[id] = EdgeState::kAlive;
  } else {
    std::fill(state.begin(), state.end(), EdgeState::kAlive);
  }

  std::vector<EdgeId> spanner_edges;
  std::vector<Vertex> center(n), new_center(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) center[v] = v;

  const double sample_p = n > 1 ? std::pow(static_cast<double>(n),
                                           -1.0 / static_cast<double>(k))
                                : 1.0;
  const int num_threads = omp_get_max_threads();
  std::vector<Decisions> decisions(static_cast<std::size_t>(num_threads));
  std::vector<std::uint8_t> sampled(n, 0);

  // ---- Phase 1: k-1 clustering iterations ----------------------------------
  for (std::size_t iter = 1; iter < k; ++iter) {
    // Independent coin per cluster id per iteration; coins are a pure
    // function of (seed, iter, center) so any thread layout sees the same.
#pragma omp parallel for schedule(static)
    for (std::int64_t c = 0; c < static_cast<std::int64_t>(n); ++c) {
      sampled[c] = support::stream_uniform(
                       options.seed, support::mix64(iter, static_cast<std::uint64_t>(c))) <
                   sample_p;
    }

#pragma omp parallel
    {
      ClusterScratch scratch(n);
      Decisions& mine = decisions[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, 128)
      for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
        const auto v = static_cast<Vertex>(vi);
        const Vertex cv = center[v];
        if (cv == kInvalidVertex) continue;       // retired in an earlier round
        if (sampled[cv]) {                        // case (a): cluster survives
          new_center[v] = cv;
          continue;
        }

        // Group alive arcs by adjacent cluster.
        scratch.begin(v);
        bool any_alive = false;
        const auto nbrs = csr.neighbors(v);
        work.add(nbrs.size());
        for (const graph::Arc& arc : nbrs) {
          if (state[arc.id] != EdgeState::kAlive) continue;
          any_alive = true;
          const Vertex cu = center[arc.to];
          SPAR_DASSERT(cu != kInvalidVertex);
          if (cu == cv) continue;  // intra-cluster: discarded below
          scratch.offer(cu, {1.0 / arc.w, arc.id});
        }
        if (!any_alive) {
          new_center[v] = kInvalidVertex;
          continue;
        }

        // Lightest edge into a *sampled* adjacent cluster, if any.
        Vertex joined = kInvalidVertex;
        Light join_edge;
        for (Vertex c : scratch.touched) {
          if (!sampled[c]) continue;
          if (joined == kInvalidVertex || scratch.best[c] < join_edge) {
            joined = c;
            join_edge = scratch.best[c];
          }
        }

        if (joined != kInvalidVertex) {
          // Case (b): join `joined` via its lightest edge; also connect to
          // every strictly lighter cluster and cut all edges to those
          // clusters, to the new cluster, and inside the old cluster.
          new_center[v] = joined;
          mine.add.push_back(join_edge.id);
          for (Vertex c : scratch.touched) {
            if (c != joined && scratch.best[c] < join_edge)
              mine.add.push_back(scratch.best[c].id);
          }
          for (const graph::Arc& arc : nbrs) {
            if (state[arc.id] != EdgeState::kAlive) continue;
            const Vertex cu = center[arc.to];
            if (cu == cv || cu == joined ||
                (cu != cv && scratch.best[cu] < join_edge)) {
              mine.discard.push_back(arc.id);
            }
          }
        } else {
          // Case (c): no sampled neighbour cluster. Connect to every
          // adjacent cluster, discard everything, and retire.
          new_center[v] = kInvalidVertex;
          for (Vertex c : scratch.touched) mine.add.push_back(scratch.best[c].id);
          for (const graph::Arc& arc : nbrs) {
            if (state[arc.id] == EdgeState::kAlive) mine.discard.push_back(arc.id);
          }
        }
      }
    }
    commit(decisions, state, spanner_edges);
    center.swap(new_center);
    std::fill(new_center.begin(), new_center.end(), kInvalidVertex);
  }

  // ---- Phase 2: vertex-cluster joining -------------------------------------
#pragma omp parallel
  {
    ClusterScratch scratch(n);
    Decisions& mine = decisions[static_cast<std::size_t>(omp_get_thread_num())];

#pragma omp for schedule(dynamic, 128)
    for (std::int64_t vi = 0; vi < static_cast<std::int64_t>(n); ++vi) {
      const auto v = static_cast<Vertex>(vi);
      const Vertex cv = center[v];
      scratch.begin(v);
      const auto nbrs = csr.neighbors(v);
      work.add(nbrs.size());
      bool any = false;
      for (const graph::Arc& arc : nbrs) {
        if (state[arc.id] != EdgeState::kAlive) continue;
        any = true;
        const Vertex cu = center[arc.to];
        SPAR_DASSERT(cu != kInvalidVertex && cv != kInvalidVertex);
        if (cu == cv) {
          mine.discard.push_back(arc.id);  // intra-cluster
          continue;
        }
        scratch.offer(cu, {1.0 / arc.w, arc.id});
      }
      if (!any) continue;
      for (Vertex c : scratch.touched) mine.add.push_back(scratch.best[c].id);
      for (const graph::Arc& arc : nbrs) {
        if (state[arc.id] != EdgeState::kAlive) continue;
        const Vertex cu = center[arc.to];
        if (cu != cv && scratch.best[cu].id != arc.id) mine.discard.push_back(arc.id);
      }
    }
  }
  commit(decisions, state, spanner_edges);

  std::sort(spanner_edges.begin(), spanner_edges.end());
  return spanner_edges;
}

Graph spanner(const Graph& g, const SpannerOptions& options) {
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, nullptr, options);
  std::vector<bool> keep(g.num_edges(), false);
  for (EdgeId id : ids) keep[id] = true;
  return g.filtered(keep);
}

}  // namespace spar::spanner
