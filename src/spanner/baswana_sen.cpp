#include "spanner/baswana_sen.hpp"

#include <algorithm>

#include "spanner/bs_core.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"

namespace spar::spanner {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;
using graph::kInvalidVertex;
using graph::Vertex;

namespace {

namespace par = support::par;
using detail::ClusterScratch;
using detail::Decisions;
using detail::EdgeState;

}  // namespace

std::size_t auto_spanner_k(std::size_t n) {
  if (n <= 2) return 1;
  std::size_t k = 1;
  while ((std::size_t{1} << k) < n) ++k;  // k = ceil(log2 n)
  return k;
}

std::vector<EdgeId> baswana_sen_spanner(const CSRGraph& csr,
                                        const std::vector<bool>* alive,
                                        const SpannerOptions& options) {
  const Vertex n = csr.num_vertices();
  const std::size_t m = csr.num_arcs() / 2;
  const std::size_t k = options.k != 0 ? options.k : auto_spanner_k(n);
  support::WorkScope work(options.work);

  if (alive != nullptr)
    SPAR_CHECK(alive->size() == m, "baswana_sen_spanner: alive mask size mismatch");
  std::vector<EdgeState> state = detail::initial_states(m, alive);

  std::vector<EdgeId> spanner_edges;
  std::vector<Vertex> center(n), new_center(n, kInvalidVertex);
  for (Vertex v = 0; v < n; ++v) center[v] = v;

  const double sample_p = detail::sample_probability(n, k);
  std::vector<Decisions> decisions(static_cast<std::size_t>(par::max_threads()));
  // Per-worker O(n) grouping scratch, reused across iterations (its epoch
  // token self-invalidates between vertices, so carry-over is safe).
  par::WorkerLocal<ClusterScratch> scratches;
  const auto scratch_for = [&](int worker) -> ClusterScratch& {
    return scratches.local(worker, [&] { return ClusterScratch(n); });
  };
  std::vector<std::uint8_t> sampled(n, 0);

  // ---- Phase 1: k-1 clustering iterations ----------------------------------
  for (std::size_t iter = 1; iter < k; ++iter) {
    // Independent coin per cluster id per iteration; coins are a pure
    // function of (seed, iter, center) so any thread layout sees the same.
    par::parallel_for(0, static_cast<std::int64_t>(n), [&](std::int64_t c) {
      sampled[static_cast<std::size_t>(c)] = detail::cluster_sampled(
          options.seed, iter, static_cast<Vertex>(c), sample_p);
    });

    par::parallel_chunks(
        0, static_cast<std::int64_t>(n),
        [&](std::int64_t vb, std::int64_t ve, std::int64_t /*chunk*/, int worker) {
          ClusterScratch& scratch = scratch_for(worker);
          Decisions& mine = decisions[static_cast<std::size_t>(worker)];
          for (std::int64_t vi = vb; vi < ve; ++vi) {
            detail::phase1_decide(csr, static_cast<Vertex>(vi), center, sampled,
                                  state, scratch, mine, new_center, work);
          }
        },
        {.grain = 128});
    detail::commit(decisions, state, spanner_edges);
    center.swap(new_center);
    std::fill(new_center.begin(), new_center.end(), kInvalidVertex);
  }

  // ---- Phase 2: vertex-cluster joining -------------------------------------
  par::parallel_chunks(
      0, static_cast<std::int64_t>(n),
      [&](std::int64_t vb, std::int64_t ve, std::int64_t /*chunk*/, int worker) {
        ClusterScratch& scratch = scratch_for(worker);
        Decisions& mine = decisions[static_cast<std::size_t>(worker)];
        for (std::int64_t vi = vb; vi < ve; ++vi) {
          detail::phase2_decide(csr, static_cast<Vertex>(vi), center, state,
                                scratch, mine, work);
        }
      },
      {.grain = 128});
  detail::commit(decisions, state, spanner_edges);

  std::sort(spanner_edges.begin(), spanner_edges.end());
  return spanner_edges;
}

Graph spanner(const Graph& g, const SpannerOptions& options) {
  const CSRGraph csr(g);
  const auto ids = baswana_sen_spanner(csr, nullptr, options);
  std::vector<bool> keep(g.num_edges(), false);
  for (EdgeId id : ids) keep[id] = true;
  return g.filtered(keep);
}

}  // namespace spar::spanner
