// Low-stretch spanning trees (Remark 2 of the paper): replacing each bundle
// component by a tree drops the sparsifier size by an O(log n) factor, at the
// price of a larger (but still polylogarithmic) stretch against which the
// leverage bound of Lemma 1 is certified.
//
// The construction is an AKPW-style (Alon-Karp-Peleg-West) cluster
// contraction: edges are bucketed by length (resistance) into geometric
// classes; for each class, the current contracted graph restricted to that
// class is decomposed into low-hop-diameter BFS balls whose BFS trees join
// the spanning tree, and the balls are contracted. Average stretch is
// polylogarithmic in practice; benches measure it (the paper's remark only
// needs "low-stretch", not a specific constant).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace spar::spanner {

struct LowStretchTreeOptions {
  std::uint64_t seed = 1;
  /// BFS ball radius in hops per contraction round; 0 = auto (ceil(log2 n)).
  std::size_t hop_radius = 0;
  /// Geometric growth factor between length classes.
  double class_growth = 4.0;
};

/// Edge ids of a spanning forest of g (one tree per connected component).
std::vector<graph::EdgeId> low_stretch_tree_ids(const graph::Graph& g,
                                                const LowStretchTreeOptions& options = {});

graph::Graph low_stretch_tree(const graph::Graph& g,
                              const LowStretchTreeOptions& options = {});

}  // namespace spar::spanner
