// Stretch verification (Section 2 definitions).
//
// st_H(e) = w_e * dist_H(u, v) with distances in resistance lengths 1/w.
// These checks are O(n * m log n)-ish and exist for tests and benches, not
// for the sparsification hot path.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace spar::graph {
class CSRGraph;
}

namespace spar::spanner {

struct StretchReport {
  double max_stretch = 0.0;   ///< over edges NOT in the subgraph
  double mean_stretch = 0.0;
  std::size_t checked_edges = 0;
  std::size_t disconnected_pairs = 0;  ///< edges with no path in the subgraph
};

/// Stretch of every edge of `g` outside `in_subgraph` over the subgraph
/// defined by `in_subgraph` (edge-id mask). Edges inside the subgraph have
/// stretch <= 1 by definition and are skipped.
StretchReport stretch_over_subgraph(const graph::Graph& g,
                                    const std::vector<bool>& in_subgraph);

/// Stretch of *all* edges of `g` over a standalone subgraph H given as a
/// Graph on the same vertex set (used for tree stretch, Remark 2).
StretchReport stretch_over_graph(const graph::Graph& g, const graph::Graph& h);

}  // namespace spar::spanner
