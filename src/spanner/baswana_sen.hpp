// Baswana-Sen (2k-1)-spanner (Random Struct. Algorithms 2007), the primitive
// behind Theorems 1 and 2 of the paper.
//
// The paper's stretch metric is electrical: st_p(e) = w_e * sum_{e' in p} 1/w_{e'},
// i.e. ordinary multiplicative stretch when each edge has length 1/w (its
// resistance). All comparisons below therefore use lengths len(e) = 1/w(e);
// with k = ceil(log2 n) the result is a "log n-spanner" in the paper's sense:
// stretch <= 2k - 1 < 2 log n, expected size O(k * n^(1+1/k)) = O(n log n).
//
// The implementation is the synchronous two-phase clustering algorithm:
// every iteration takes a snapshot of (cluster, sampled, edge-state), makes
// all per-vertex decisions against the snapshot (OpenMP-parallel, one RNG
// stream per cluster/vertex so results are independent of thread count), and
// then commits them. This mirrors the CRCW PRAM scheme of Theorem 1 and is
// the exact logic the distributed protocol in src/dist re-implements with
// messages.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "support/work_counter.hpp"

namespace spar::spanner {

struct SpannerOptions {
  /// Number of clustering levels; stretch is 2k-1. 0 means "auto":
  /// k = max(1, ceil(log2 n)), the paper's log n-spanner setting.
  std::size_t k = 0;
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
};

/// Computes a spanner of the subgraph of `g` given by alive[id] == true
/// (alive == nullptr means all edges). Returns the selected edge ids.
///
/// Guarantees (Baswana-Sen Thm 5.4 adapted, verified by tests/benches):
///  * every alive edge has stretch <= 2k-1 over the returned edge set,
///  * expected size O(k * n^(1+1/k)).
std::vector<graph::EdgeId> baswana_sen_spanner(const graph::CSRGraph& csr,
                                               const std::vector<bool>* alive,
                                               const SpannerOptions& options);

/// Convenience wrapper: spanner of a whole Graph, as a Graph.
graph::Graph spanner(const graph::Graph& g, const SpannerOptions& options = {});

/// The k the "auto" setting resolves to for an n-vertex graph.
std::size_t auto_spanner_k(std::size_t n);

}  // namespace spar::spanner
