// Internal decision core shared by the shared-memory Baswana-Sen
// implementation (baswana_sen.cpp) and the distributed protocol simulator
// (dist/dist_spanner.cpp).
//
// Both must make BIT-IDENTICAL per-vertex decisions -- the simulator's
// contract is that, for a fixed seed, the protocol selects exactly the edges
// the CRCW implementation selects (pinned by
// tests/integration/test_parallel_determinism.cpp). Keeping the tie-break,
// the case (a)/(b)/(c) analysis, and the commit ordering in one header makes
// that contract un-breakable by a one-sided edit.
//
// Not installed API: everything here lives in spar::spanner::detail.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/work_counter.hpp"

namespace spar::spanner::detail {

enum class EdgeState : std::uint8_t { kDead = 0, kAlive = 1, kSpanner = 2 };

// Deterministic tie-break for "lightest": (length, edge id) lexicographic.
struct Light {
  double len = 0.0;
  graph::EdgeId id = graph::kInvalidEdge;

  bool operator<(const Light& other) const {
    if (len != other.len) return len < other.len;
    return id < other.id;
  }
};

// Per-worker scratch for grouping a vertex's alive arcs by adjacent cluster
// with the timestamp trick (O(deg) per vertex, no hashing). The token is a
// monotone epoch, NOT the vertex id: the scratch is reused across clustering
// iterations, and a vertex-id token would treat iteration i-1's entries for
// the same vertex as valid in iteration i.
struct ClusterScratch {
  std::vector<std::uint64_t> stamp;  // stamp[c] == token  <=>  entry valid
  std::vector<Light> best;           // lightest arc to cluster c
  std::vector<graph::Vertex> touched;  // clusters seen for current vertex
  std::uint64_t token = 0;

  explicit ClusterScratch(std::size_t n) : stamp(n, 0), best(n) {}

  void begin() {
    ++token;
    touched.clear();
  }

  void offer(graph::Vertex cluster, Light candidate) {
    if (stamp[cluster] != token) {
      stamp[cluster] = token;
      best[cluster] = candidate;
      touched.push_back(cluster);
    } else if (candidate < best[cluster]) {
      best[cluster] = candidate;
    }
  }
};

// Decisions a worker accumulates against the iteration snapshot, committed
// only after every vertex has decided (the synchronous super-step).
struct Decisions {
  std::vector<graph::EdgeId> discard;
  std::vector<graph::EdgeId> add;

  void clear() {
    discard.clear();
    add.clear();
  }
};

/// The per-(cluster, iteration) sampling coin: a pure function of
/// (seed, iter, cluster), so any thread layout -- or network node -- sees the
/// same coin.
inline bool cluster_sampled(std::uint64_t seed, std::size_t iter,
                            graph::Vertex cluster, double sample_p) {
  return support::stream_uniform(
             seed, support::mix64(iter, static_cast<std::uint64_t>(cluster))) <
         sample_p;
}

/// n^(-1/k), the per-iteration cluster survival probability.
inline double sample_probability(graph::Vertex n, std::size_t k) {
  return n > 1 ? std::pow(static_cast<double>(n), -1.0 / static_cast<double>(k))
               : 1.0;
}

/// One vertex's phase-1 decision against the snapshot (center, sampled,
/// state). Appends add/discard decisions to `out`, writes new_center[v], and
/// returns the number of alive arcs scanned (== messages v sends in the
/// distributed protocol's exchange step).
///
/// `Adjacency` is anything with CSRGraph's neighbors(v) -> span<const Arc>
/// shape whose arc ids are GLOBAL edge ids in canonical (target, edge id)
/// row order: the full CSRGraph in the shared-memory path, a
/// graph::ShardAdjacency (owned vertices only) in the sharded runtime. Same
/// rows in => same decisions out, which is the whole bit-identity argument.
template <typename Adjacency>
inline std::uint64_t phase1_decide(const Adjacency& csr, graph::Vertex v,
                                   const std::vector<graph::Vertex>& center,
                                   const std::vector<std::uint8_t>& sampled,
                                   const std::vector<EdgeState>& state,
                                   ClusterScratch& scratch, Decisions& out,
                                   std::vector<graph::Vertex>& new_center,
                                   const support::WorkScope& work) {
  using graph::kInvalidVertex;
  using graph::Vertex;

  const Vertex cv = center[v];
  if (cv == kInvalidVertex) return 0;  // retired in an earlier round
  if (sampled[cv]) {                   // case (a): cluster survives
    new_center[v] = cv;
    return 0;
  }

  // Group alive arcs by adjacent cluster.
  scratch.begin();
  std::uint64_t alive_arcs = 0;
  const auto nbrs = csr.neighbors(v);
  work.add(nbrs.size());
  for (const graph::Arc& arc : nbrs) {
    if (state[arc.id] != EdgeState::kAlive) continue;
    ++alive_arcs;
    const Vertex cu = center[arc.to];
    SPAR_DASSERT(cu != kInvalidVertex);
    if (cu == cv) continue;  // intra-cluster: discarded below
    scratch.offer(cu, {1.0 / arc.w, arc.id});
  }
  if (alive_arcs == 0) {
    new_center[v] = kInvalidVertex;
    return 0;
  }

  // Lightest edge into a *sampled* adjacent cluster, if any.
  Vertex joined = kInvalidVertex;
  Light join_edge;
  for (Vertex c : scratch.touched) {
    if (!sampled[c]) continue;
    if (joined == kInvalidVertex || scratch.best[c] < join_edge) {
      joined = c;
      join_edge = scratch.best[c];
    }
  }

  if (joined != kInvalidVertex) {
    // Case (b): join `joined` via its lightest edge; also connect to every
    // strictly lighter cluster and cut all edges to those clusters, to the
    // new cluster, and inside the old cluster.
    new_center[v] = joined;
    out.add.push_back(join_edge.id);
    for (Vertex c : scratch.touched) {
      if (c != joined && scratch.best[c] < join_edge)
        out.add.push_back(scratch.best[c].id);
    }
    for (const graph::Arc& arc : nbrs) {
      if (state[arc.id] != EdgeState::kAlive) continue;
      const Vertex cu = center[arc.to];
      if (cu == cv || cu == joined || (cu != cv && scratch.best[cu] < join_edge)) {
        out.discard.push_back(arc.id);
      }
    }
  } else {
    // Case (c): no sampled neighbour cluster. Connect to every adjacent
    // cluster, discard everything, and retire.
    new_center[v] = kInvalidVertex;
    for (Vertex c : scratch.touched) out.add.push_back(scratch.best[c].id);
    for (const graph::Arc& arc : nbrs) {
      if (state[arc.id] == EdgeState::kAlive) out.discard.push_back(arc.id);
    }
  }
  return alive_arcs;
}

/// One vertex's phase-2 (vertex-cluster joining) decision. Same conventions
/// (and the same Adjacency contract) as phase1_decide.
template <typename Adjacency>
inline std::uint64_t phase2_decide(const Adjacency& csr, graph::Vertex v,
                                   const std::vector<graph::Vertex>& center,
                                   const std::vector<EdgeState>& state,
                                   ClusterScratch& scratch, Decisions& out,
                                   const support::WorkScope& work) {
  using graph::kInvalidVertex;
  using graph::Vertex;

  const Vertex cv = center[v];
  scratch.begin();
  const auto nbrs = csr.neighbors(v);
  work.add(nbrs.size());
  std::uint64_t alive_arcs = 0;
  for (const graph::Arc& arc : nbrs) {
    if (state[arc.id] != EdgeState::kAlive) continue;
    ++alive_arcs;
    const Vertex cu = center[arc.to];
    SPAR_DASSERT(cu != kInvalidVertex && cv != kInvalidVertex);
    if (cu == cv) {
      out.discard.push_back(arc.id);  // intra-cluster
      continue;
    }
    scratch.offer(cu, {1.0 / arc.w, arc.id});
  }
  if (alive_arcs == 0) return 0;
  for (Vertex c : scratch.touched) out.add.push_back(scratch.best[c].id);
  for (const graph::Arc& arc : nbrs) {
    if (state[arc.id] != EdgeState::kAlive) continue;
    const Vertex cu = center[arc.to];
    if (cu != cv && scratch.best[cu].id != arc.id) out.discard.push_back(arc.id);
  }
  return alive_arcs;
}

/// Commit one super-step with an ownership filter: discards first, then
/// spanner marks in sorted edge-id order. An edge both discarded (by one
/// endpoint) and selected (by the other) must stay -- keeping extra edges
/// never hurts stretch, and Baswana-Sen's analysis adds it. State flips for
/// EVERY decided edge, but only edges with owns(id) true are recorded and
/// counted -- in the sharded runtime both endpoint shards replay a border
/// edge's commit to keep their state arrays in lock-step, while exactly one
/// (the edge owner) reports it. Returns how many owned edges were newly
/// marked.
template <typename Owns>
inline std::uint64_t commit_owned(Decisions& d, std::vector<EdgeState>& state,
                                  std::vector<graph::EdgeId>& spanner_edges,
                                  Owns&& owns) {
  for (graph::EdgeId id : d.discard) state[id] = EdgeState::kDead;
  std::sort(d.add.begin(), d.add.end());  // deterministic output order
  std::uint64_t added = 0;
  for (graph::EdgeId id : d.add) {
    if (state[id] != EdgeState::kSpanner) {
      state[id] = EdgeState::kSpanner;
      if (owns(id)) {
        spanner_edges.push_back(id);
        ++added;
      }
    }
  }
  d.clear();
  return added;
}

/// Single-owner commit: every decided edge is local (the shared-memory path
/// and the one-shard mesh).
inline std::uint64_t commit(Decisions& d, std::vector<EdgeState>& state,
                            std::vector<graph::EdgeId>& spanner_edges) {
  return commit_owned(d, state, spanner_edges,
                      [](graph::EdgeId) { return true; });
}

/// Multi-worker commit: merges every worker's decisions (worker order is
/// irrelevant -- discards are order-free and adds get sorted) into one batch.
inline std::uint64_t commit(std::vector<Decisions>& per_worker,
                            std::vector<EdgeState>& state,
                            std::vector<graph::EdgeId>& spanner_edges) {
  Decisions merged;
  for (Decisions& d : per_worker) {
    merged.discard.insert(merged.discard.end(), d.discard.begin(), d.discard.end());
    merged.add.insert(merged.add.end(), d.add.begin(), d.add.end());
    d.clear();
  }
  return commit(merged, state, spanner_edges);
}

/// Initial edge states from an optional alive mask (nullptr = all alive).
inline std::vector<EdgeState> initial_states(std::size_t m,
                                             const std::vector<bool>* alive) {
  std::vector<EdgeState> state(m, EdgeState::kDead);
  if (alive != nullptr) {
    for (std::size_t id = 0; id < m; ++id)
      if ((*alive)[id]) state[id] = EdgeState::kAlive;
  } else {
    std::fill(state.begin(), state.end(), EdgeState::kAlive);
  }
  return state;
}

}  // namespace spar::spanner::detail
