#include "spanner/low_stretch_tree.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <queue>
#include <unordered_map>

#include "graph/union_find.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::spanner {

using graph::EdgeId;
using graph::Graph;
using graph::UnionFind;
using graph::Vertex;

std::vector<EdgeId> low_stretch_tree_ids(const Graph& g,
                                         const LowStretchTreeOptions& options) {
  const Vertex n = g.num_vertices();
  const auto edges = g.edges();
  std::vector<EdgeId> tree;
  if (n == 0 || edges.empty()) return tree;

  const std::size_t radius =
      options.hop_radius != 0
          ? options.hop_radius
          : std::max<std::size_t>(1, static_cast<std::size_t>(
                                         std::ceil(std::log2(std::max<double>(n, 2)))));
  SPAR_CHECK(options.class_growth > 1.0, "low_stretch_tree: class_growth must be > 1");

  // Bucket edges into geometric length classes (length = resistance = 1/w).
  double min_len = 1.0 / edges[0].w;
  for (const graph::Edge& e : edges) min_len = std::min(min_len, 1.0 / e.w);
  const double log_growth = std::log(options.class_growth);
  std::vector<std::vector<EdgeId>> classes;
  for (EdgeId id = 0; id < edges.size(); ++id) {
    const double len = 1.0 / edges[id].w;
    const auto cls = static_cast<std::size_t>(
        std::max(0.0, std::floor(std::log(len / min_len) / log_growth + 1e-12)));
    if (cls >= classes.size()) classes.resize(cls + 1);
    classes[cls].push_back(id);
  }

  UnionFind uf(n);
  support::Rng rng(options.seed);

  // Edges whose endpoints are still in different clusters after a round are
  // carried into the next class (AKPW moves unfinished edges up a level); the
  // final class loops until nothing crosses, so the result spans every
  // component. Each round with crossing edges contracts at least one pair
  // (radius >= 1), so the loop terminates.
  std::vector<EdgeId> carry;
  for (std::size_t cls = 0; cls < classes.size() || !carry.empty();) {
    std::vector<EdgeId> cls_edges = std::move(carry);
    carry.clear();
    if (cls < classes.size()) {
      cls_edges.insert(cls_edges.end(), classes[cls].begin(), classes[cls].end());
    }
    if (cls_edges.empty()) {
      ++cls;
      continue;
    }
    // Collect the class subgraph over contracted super-vertices.
    std::unordered_map<std::size_t, Vertex> root_to_local;
    std::vector<std::size_t> local_to_root;
    auto local_id = [&](std::size_t root) {
      const auto [it, inserted] =
          root_to_local.try_emplace(root, static_cast<Vertex>(local_to_root.size()));
      if (inserted) local_to_root.push_back(root);
      return it->second;
    };
    struct LocalArc {
      Vertex to;
      EdgeId id;
    };
    std::vector<std::vector<LocalArc>> adj;
    for (EdgeId id : cls_edges) {
      const std::size_t ru = uf.find(edges[id].u);
      const std::size_t rv = uf.find(edges[id].v);
      if (ru == rv) continue;  // already inside one cluster
      const Vertex lu = local_id(ru);
      const Vertex lv = local_id(rv);
      if (std::max<std::size_t>(lu, lv) >= adj.size())
        adj.resize(std::max<std::size_t>(lu, lv) + 1);
      adj[lu].push_back({lv, id});
      adj[lv].push_back({lu, id});
    }
    if (adj.empty()) {
      ++cls;
      continue;
    }

    // Random-order BFS balls of bounded hop radius; the BFS tree edges are
    // spanning-tree edges and the touched super-vertices contract together.
    const auto local_n = static_cast<Vertex>(adj.size());
    std::vector<Vertex> order(local_n);
    std::iota(order.begin(), order.end(), Vertex{0});
    for (Vertex i = local_n; i > 1; --i)
      std::swap(order[i - 1], order[static_cast<Vertex>(rng.below(i))]);

    std::vector<std::size_t> hop(local_n, static_cast<std::size_t>(-1));
    std::queue<Vertex> frontier;
    for (Vertex seed_local : order) {
      if (hop[seed_local] != static_cast<std::size_t>(-1)) continue;
      hop[seed_local] = 0;
      frontier.push(seed_local);
      while (!frontier.empty()) {
        const Vertex v = frontier.front();
        frontier.pop();
        if (hop[v] >= radius) continue;
        for (const LocalArc& arc : adj[v]) {
          if (hop[arc.to] != static_cast<std::size_t>(-1)) continue;
          hop[arc.to] = hop[v] + 1;
          tree.push_back(arc.id);
          uf.unite(local_to_root[v], local_to_root[arc.to]);
          frontier.push(arc.to);
        }
      }
    }

    // Edges still crossing clusters retry at the next level.
    for (EdgeId id : cls_edges) {
      if (uf.find(edges[id].u) != uf.find(edges[id].v)) carry.push_back(id);
    }
    ++cls;
  }

  std::sort(tree.begin(), tree.end());
  return tree;
}

Graph low_stretch_tree(const Graph& g, const LowStretchTreeOptions& options) {
  std::vector<bool> keep(g.num_edges(), false);
  for (EdgeId id : low_stretch_tree_ids(g, options)) keep[id] = true;
  return g.filtered(keep);
}

}  // namespace spar::spanner
