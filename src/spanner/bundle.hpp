// t-bundle spanners (Definition 1 of the paper) and their parallel
// construction (Corollary 2): H = H_1 + ... + H_t where H_i is a spanner of
// G - (H_1 + ... + H_{i-1}). Lemma 1 then certifies, for every edge outside
// the bundle, the leverage-score bound w_e * R_e[G] <= 2 log n / t, which is
// what licenses uniform sampling in Algorithm 1.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/csr.hpp"
#include "graph/graph.hpp"
#include "spanner/baswana_sen.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::spanner {

struct BundleOptions {
  std::size_t t = 1;            ///< number of spanner components
  std::size_t k = 0;            ///< per-spanner k (0 = auto, ceil(log2 n))
  std::uint64_t seed = 1;
  support::WorkCounter* work = nullptr;
};

struct Bundle {
  /// in_bundle[id] is true iff edge id of the input graph is in some H_i.
  std::vector<bool> in_bundle;
  /// Edge ids of each component H_i (empty components trail if the graph ran
  /// out of edges before t spanners were peeled).
  std::vector<std::vector<graph::EdgeId>> components;
  std::size_t bundle_edge_count = 0;
  std::size_t off_bundle_edge_count = 0;

  /// The bundle as a graph over the same vertex set as `g`.
  graph::Graph bundle_graph(const graph::Graph& g) const;
  /// Edges of `g` outside the bundle.
  graph::Graph remainder_graph(const graph::Graph& g) const;
};

/// Peels t spanners iteratively. The CSR adjacency is built once; component
/// i runs on the alive mask left by components 1..i-1, exactly matching the
/// "edges declare themselves out of the i-th iteration" parallel scheme of
/// Section 3.1.
Bundle t_bundle(const graph::Graph& g, const BundleOptions& options);

/// Same, reusing a prebuilt CSR (the sparsifier's inner loop calls this).
Bundle t_bundle(const graph::Graph& g, const graph::CSRGraph& csr,
                const BundleOptions& options);

/// Core overload: only the edge count and the adjacency are needed, so the
/// round pipeline can call this straight off its CSR scratch without ever
/// materializing a Graph.
Bundle t_bundle(std::size_t num_edges, const graph::CSRGraph& csr,
                const BundleOptions& options);

/// Remark 2 variant: components are low-stretch spanning trees instead of
/// spanners, shrinking the bundle from O(t n log n) to t(n-1) edges.
Bundle tree_bundle(const graph::Graph& g, const BundleOptions& options);

namespace detail {

/// Generic t-bundle peel shared by t_bundle and the distributed simulator,
/// so the per-component seed derivation (mix64(seed, i+1)) and the alive-mask
/// bookkeeping stay identical in both. `spanner_fn(component_seed, alive)`
/// returns the component's edge ids, which must all be alive.
template <typename SpannerFn>
Bundle peel_bundle(std::size_t m, std::size_t t, std::uint64_t seed,
                   SpannerFn&& spanner_fn) {
  Bundle bundle;
  bundle.in_bundle.assign(m, false);
  std::vector<bool> alive(m, true);
  std::size_t alive_count = m;

  for (std::size_t i = 0; i < t && alive_count > 0; ++i) {
    std::vector<graph::EdgeId> ids =
        spanner_fn(support::mix64(seed, i + 1), alive);
    for (graph::EdgeId id : ids) {
      SPAR_DASSERT(alive[id]);
      alive[id] = false;
      bundle.in_bundle[id] = true;
    }
    alive_count -= ids.size();
    bundle.components.push_back(std::move(ids));
  }

  bundle.bundle_edge_count = m - alive_count;
  bundle.off_bundle_edge_count = alive_count;
  return bundle;
}

}  // namespace detail

}  // namespace spar::spanner
