#include "spanner/stretch.hpp"

#include <algorithm>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "support/assert.hpp"

namespace spar::spanner {

using graph::CSRGraph;
using graph::Graph;
using graph::Vertex;

namespace {

// Group query edges by source vertex so one Dijkstra per distinct source
// covers all of them.
StretchReport stretch_impl(const CSRGraph& csr_h, const std::vector<bool>* alive_h,
                           const std::vector<graph::Edge>& queries) {
  StretchReport report;
  if (queries.empty()) return report;

  std::vector<std::size_t> order(queries.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return queries[a].u < queries[b].u;
  });

  double total = 0.0;
  std::size_t i = 0;
  while (i < order.size()) {
    const Vertex source = queries[order[i]].u;
    const auto dist = graph::dijkstra(csr_h, source, alive_h);
    while (i < order.size() && queries[order[i]].u == source) {
      const graph::Edge& e = queries[order[i]];
      ++report.checked_edges;
      if (dist[e.v] == graph::kInfDist) {
        ++report.disconnected_pairs;
      } else {
        const double st = e.w * dist[e.v];
        total += st;
        report.max_stretch = std::max(report.max_stretch, st);
      }
      ++i;
    }
  }
  const std::size_t connected = report.checked_edges - report.disconnected_pairs;
  report.mean_stretch = connected > 0 ? total / static_cast<double>(connected) : 0.0;
  return report;
}

}  // namespace

StretchReport stretch_over_subgraph(const Graph& g,
                                    const std::vector<bool>& in_subgraph) {
  SPAR_CHECK(in_subgraph.size() == g.num_edges(),
             "stretch_over_subgraph: mask size mismatch");
  std::vector<graph::Edge> queries;
  const auto edges = g.edges();
  for (graph::EdgeId id = 0; id < edges.size(); ++id)
    if (!in_subgraph[id]) queries.push_back(edges[id]);
  const CSRGraph csr(g);
  return stretch_impl(csr, &in_subgraph, queries);
}

StretchReport stretch_over_graph(const Graph& g, const Graph& h) {
  SPAR_CHECK(g.num_vertices() == h.num_vertices(),
             "stretch_over_graph: vertex count mismatch");
  std::vector<graph::Edge> queries(g.edges().begin(), g.edges().end());
  const CSRGraph csr_h(h);
  return stretch_impl(csr_h, nullptr, queries);
}

}  // namespace spar::spanner
