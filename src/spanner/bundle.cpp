#include "spanner/bundle.hpp"

#include "spanner/low_stretch_tree.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace spar::spanner {

using graph::CSRGraph;
using graph::EdgeId;
using graph::Graph;

Graph Bundle::bundle_graph(const Graph& g) const {
  return g.filtered(in_bundle);
}

Graph Bundle::remainder_graph(const Graph& g) const {
  return g.filtered_out(in_bundle);
}

Bundle t_bundle(const Graph& g, const BundleOptions& options) {
  const CSRGraph csr(g);
  return t_bundle(g, csr, options);
}

Bundle t_bundle(const Graph& g, const CSRGraph& csr, const BundleOptions& options) {
  return t_bundle(g.num_edges(), csr, options);
}

Bundle t_bundle(std::size_t num_edges, const CSRGraph& csr,
                const BundleOptions& options) {
  SPAR_CHECK(options.t >= 1, "t_bundle: t must be >= 1");
  return detail::peel_bundle(
      num_edges, options.t, options.seed,
      [&](std::uint64_t component_seed, const std::vector<bool>& alive) {
        SpannerOptions sopt;
        sopt.k = options.k;
        sopt.seed = component_seed;
        sopt.work = options.work;
        return baswana_sen_spanner(csr, &alive, sopt);
      });
}

Bundle tree_bundle(const Graph& g, const BundleOptions& options) {
  SPAR_CHECK(options.t >= 1, "tree_bundle: t must be >= 1");
  const std::size_t m = g.num_edges();

  Bundle bundle;
  bundle.in_bundle.assign(m, false);
  std::size_t alive_count = m;

  for (std::size_t i = 0; i < options.t && alive_count > 0; ++i) {
    // Materialize the remainder and keep a map back to original edge ids;
    // trees are tiny (n-1 edges) so the copy is cheap next to the spanner path.
    Graph rest(g.num_vertices());
    std::vector<EdgeId> back_map;
    back_map.reserve(alive_count);
    const auto edges = g.edges();
    for (EdgeId id = 0; id < m; ++id) {
      if (bundle.in_bundle[id]) continue;
      rest.add_edge(edges[id].u, edges[id].v, edges[id].w);
      back_map.push_back(id);
    }
    LowStretchTreeOptions topt;
    topt.seed = support::mix64(options.seed, i + 1);
    std::vector<EdgeId> local_ids = low_stretch_tree_ids(rest, topt);
    std::vector<EdgeId> ids;
    ids.reserve(local_ids.size());
    for (EdgeId local : local_ids) ids.push_back(back_map[local]);
    for (EdgeId id : ids) bundle.in_bundle[id] = true;
    alive_count -= ids.size();
    bundle.components.push_back(std::move(ids));
  }

  bundle.bundle_edge_count = m - alive_count;
  bundle.off_bundle_edge_count = alive_count;
  return bundle;
}

}  // namespace spar::spanner
