#include "support/options.hpp"

namespace spar::support {

Options::Options(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

bool Options::has(const std::string& key) const { return values_.count(key) > 0; }

std::string Options::get(const std::string& key, const std::string& fallback) const {
  const auto it = values_.find(key);
  return it == values_.end() ? fallback : it->second;
}

std::int64_t Options::get_int(const std::string& key, std::int64_t fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_number<std::int64_t>("--" + key, it->second);
}

double Options::get_double(const std::string& key, double fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return parse_number<double>("--" + key, it->second);
}

bool Options::get_bool(const std::string& key, bool fallback) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return fallback;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace spar::support
