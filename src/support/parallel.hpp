// Shared-memory parallel execution substrate for libspar.
//
// Every parallel loop in the library goes through this header instead of raw
// OpenMP pragmas, for three reasons:
//  * one place controls the backend: a persistent TaskPool when one is
//    current on the calling thread (support/task_pool.hpp -- the solver
//    service's executors), else OpenMP when compiled with SPAR_HAS_OPENMP
//    (the CMake option SPAR_ENABLE_OPENMP), a serial fallback otherwise --
//    no other file includes <omp.h>;
//  * determinism: parallel_reduce splits the range into chunks whose
//    boundaries depend only on (range, grain) -- never on the thread count
//    OR the backend -- and combines partials in chunk order, so
//    floating-point results are bit-identical for 1 and N threads, under
//    OpenMP or a TaskPool, and identical to the serial build;
//  * per-chunk RNG streams: chunk_rng(seed, chunk) gives randomized parallel
//    algorithms an independent deterministic generator per chunk, the
//    counter-based scheme the paper's CRCW PRAM algorithms assume.
#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "support/rng.hpp"
#include "support/task_pool.hpp"

#if defined(SPAR_HAS_OPENMP)
#include <omp.h>
#endif

namespace spar::support::par {

/// True when the library was compiled against OpenMP.
constexpr bool openmp_enabled() noexcept {
#if defined(SPAR_HAS_OPENMP)
  return true;
#else
  return false;
#endif
}

/// Current thread budget for parallel regions: the current TaskPool's width
/// when one is scoped in, else OpenMP's budget (1 in the serial build).
inline int max_threads() noexcept {
  if (const TaskPool* pool = TaskPool::current()) return pool->parallel_width();
#if defined(SPAR_HAS_OPENMP)
  return omp_get_max_threads();
#else
  return 1;
#endif
}

/// Number of hardware execution units OpenMP sees (1 in the serial build).
inline int hardware_threads() noexcept {
#if defined(SPAR_HAS_OPENMP)
  return omp_get_num_procs();
#else
  return 1;
#endif
}

/// Worker id inside a parallel region; 0 outside any region and in the
/// serial build. Always < max_threads() at region entry. TaskPool workers
/// report their pool worker id (1..workers), so per-thread accounting like
/// WorkCounter stays race-free under pool execution too.
inline int thread_id() noexcept {
  if (detail::tls_home_pool != nullptr) return detail::tls_worker_id;
#if defined(SPAR_HAS_OPENMP)
  return omp_get_thread_num();
#else
  return 0;
#endif
}

/// Set the thread budget (no-op in the serial build).
inline void set_num_threads(int threads) noexcept {
#if defined(SPAR_HAS_OPENMP)
  omp_set_num_threads(std::max(threads, 1));
#else
  (void)threads;
#endif
}

/// RAII thread-count override for tests and benches that sweep thread counts.
class ThreadLimit {
 public:
  explicit ThreadLimit(int threads) : saved_(max_threads()) {
    set_num_threads(threads);
  }
  ~ThreadLimit() { set_num_threads(saved_); }
  ThreadLimit(const ThreadLimit&) = delete;
  ThreadLimit& operator=(const ThreadLimit&) = delete;

 private:
  int saved_;
};

/// Tuning knobs for a parallel loop. `enable == false` forces the serial
/// path (the substrate equivalent of OpenMP's `if` clause); `grain` fixes the
/// chunk size for chunked loops and reductions (0 = default_grain).
struct ParOpts {
  std::int64_t grain = 0;
  bool enable = true;
};

/// Chunk size used when the caller does not fix one. A pure function of the
/// range length only -- NEVER of the thread count -- so chunk boundaries (and
/// therefore reduction order) are machine- and thread-independent.
constexpr std::int64_t default_grain(std::int64_t n) noexcept {
  constexpr std::int64_t kMinGrain = 1 << 10;
  constexpr std::int64_t kMaxChunks = 1 << 12;
  const std::int64_t for_chunks = (n + kMaxChunks - 1) / kMaxChunks;
  return std::max(kMinGrain, for_chunks);
}

/// Independent deterministic RNG for logical chunk `chunk` under `seed`;
/// the per-thread stream utility for randomized parallel loops.
inline Rng chunk_rng(std::uint64_t seed, std::uint64_t chunk) {
  return stream_rng(mix64(seed, 0x6368756e6bULL /* "chunk" */), chunk);
}

/// Element-parallel loop: f(i) for i in [begin, end). Iterations must be
/// independent. Order of execution is unspecified in parallel builds.
template <typename F>
void parallel_for(std::int64_t begin, std::int64_t end, F&& f,
                  ParOpts opts = {}) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  if (TaskPool* pool = TaskPool::current();
      pool != nullptr && opts.enable && n > 1 && pool->parallel_width() > 1) {
    // Pool path: chunk with the same boundary function as every other loop
    // (iterations are independent, so the grouping is unobservable).
    const std::int64_t grain = opts.grain > 0 ? opts.grain : default_grain(n);
    const std::int64_t chunks = (n + grain - 1) / grain;
    pool->run_indexed(chunks, [&](std::int64_t c, int /*worker*/) {
      const std::int64_t cb = begin + c * grain;
      const std::int64_t ce = std::min(end, cb + grain);
      for (std::int64_t i = cb; i < ce; ++i) f(i);
    });
    return;
  }
#if defined(SPAR_HAS_OPENMP)
  if (opts.enable && n > 1 && max_threads() > 1) {
#pragma omp parallel for schedule(static)
    for (std::int64_t i = begin; i < end; ++i) f(i);
    return;
  }
#endif
  (void)opts;
  for (std::int64_t i = begin; i < end; ++i) f(i);
}

/// Chunk-parallel loop with dynamic load balancing:
/// f(chunk_begin, chunk_end, chunk_index, worker_id) for each chunk.
/// worker_id is stable for the duration of one call and < max_threads(),
/// so callers can keep per-worker scratch indexed by it. Chunk boundaries
/// depend only on (range, grain): thread-count independent.
template <typename F>
void parallel_chunks(std::int64_t begin, std::int64_t end, F&& f,
                     ParOpts opts = {}) {
  const std::int64_t n = end - begin;
  if (n <= 0) return;
  const std::int64_t grain = opts.grain > 0 ? opts.grain : default_grain(n);
  const std::int64_t chunks = (n + grain - 1) / grain;
  const auto run_chunk = [&](std::int64_t c, int worker) {
    const std::int64_t cb = begin + c * grain;
    const std::int64_t ce = std::min(end, cb + grain);
    f(cb, ce, c, worker);
  };
  if (TaskPool* pool = TaskPool::current();
      pool != nullptr && opts.enable && chunks > 1 && pool->parallel_width() > 1) {
    // Pool path: chunk boundaries are identical to the OpenMP path (they
    // depend only on range and grain) and run_indexed's claim order matches
    // schedule(dynamic, 1); worker ids stay < max_threads() = pool width.
    pool->run_indexed(chunks, run_chunk);
    return;
  }
#if defined(SPAR_HAS_OPENMP)
  if (opts.enable && chunks > 1 && max_threads() > 1) {
#pragma omp parallel for schedule(dynamic, 1)
    for (std::int64_t c = 0; c < chunks; ++c) run_chunk(c, omp_get_thread_num());
    return;
  }
#endif
  for (std::int64_t c = 0; c < chunks; ++c) run_chunk(c, 0);
}

/// Deterministic parallel reduction.
///
/// `map(chunk_begin, chunk_end) -> T` folds one chunk serially;
/// `combine(T, T) -> T` merges partials and is applied in ascending chunk
/// order. Because the chunking is thread-count independent and the combine
/// order is fixed, the result is bit-identical across thread counts and
/// identical to the serial build -- unlike an OpenMP `reduction` clause.
template <typename T, typename Map, typename Combine>
T parallel_reduce(std::int64_t begin, std::int64_t end, T identity, Map&& map,
                  Combine&& combine, ParOpts opts = {}) {
  const std::int64_t n = end - begin;
  if (n <= 0) return identity;
  const std::int64_t grain = opts.grain > 0 ? opts.grain : default_grain(n);
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1) return combine(identity, map(begin, end));

  std::vector<T> partial(static_cast<std::size_t>(chunks), identity);
  parallel_chunks(
      begin, end,
      [&](std::int64_t cb, std::int64_t ce, std::int64_t c, int /*worker*/) {
        partial[static_cast<std::size_t>(c)] = map(cb, ce);
      },
      {.grain = grain, .enable = opts.enable});
  T acc = identity;
  for (const T& p : partial) acc = combine(acc, p);
  return acc;
}

/// Deterministic parallel stream compaction (prefix-sum scatter).
///
/// Evaluates keep(i) for every i in [begin, end) and calls emit(i, pos) for
/// each kept index, where pos is i's rank among the kept indices -- i.e. the
/// output is the stable order-preserving compaction a serial
/// `for (i) if (keep(i)) out[pos++] = f(i)` loop would produce. Two passes
/// (per-chunk count, then exclusive prefix sum over chunks, then scatter)
/// replace the serial append; because chunk boundaries depend only on
/// (range, grain), every pos is identical for any thread count and for the
/// serial build. Returns the number of kept elements.
///
/// keep(i) is evaluated twice per index (once per pass) and must be pure;
/// emit(i, pos) must tolerate concurrent calls for distinct i (disjoint pos).
template <typename Keep, typename Emit>
std::size_t parallel_compact(std::int64_t begin, std::int64_t end, Keep&& keep,
                             Emit&& emit, ParOpts opts = {}) {
  const std::int64_t n = end - begin;
  if (n <= 0) return 0;
  const std::int64_t grain = opts.grain > 0 ? opts.grain : default_grain(n);
  const std::int64_t chunks = (n + grain - 1) / grain;
  if (chunks == 1 || !opts.enable || max_threads() <= 1) {
    // Single pass: keep() evaluated once per index, exactly the serial loop.
    std::size_t pos = 0;
    for (std::int64_t i = begin; i < end; ++i)
      if (keep(i)) emit(i, pos++);
    return pos;
  }

  std::vector<std::size_t> offset(static_cast<std::size_t>(chunks));
  parallel_chunks(
      begin, end,
      [&](std::int64_t cb, std::int64_t ce, std::int64_t c, int /*worker*/) {
        std::size_t count = 0;
        for (std::int64_t i = cb; i < ce; ++i) count += keep(i) ? 1 : 0;
        offset[static_cast<std::size_t>(c)] = count;
      },
      {.grain = grain, .enable = opts.enable});
  std::size_t total = 0;
  for (std::size_t c = 0; c < offset.size(); ++c) {
    const std::size_t count = offset[c];
    offset[c] = total;
    total += count;
  }
  parallel_chunks(
      begin, end,
      [&](std::int64_t cb, std::int64_t ce, std::int64_t c, int /*worker*/) {
        std::size_t pos = offset[static_cast<std::size_t>(c)];
        for (std::int64_t i = cb; i < ce; ++i)
          if (keep(i)) emit(i, pos++);
      },
      {.grain = grain, .enable = opts.enable});
  return total;
}

/// Human-readable backend summary ("openmp, max_threads=8, ...") for benches.
std::string backend_description();

/// Lazily-constructed per-worker scratch for parallel_chunks bodies.
///
/// Sized from max_threads() at construction (construct it AFTER any
/// set_num_threads call, before the parallel region); each slot is created on
/// the first chunk its worker runs. Safe because a worker id is owned by
/// exactly one thread for the duration of a parallel_chunks call. Reusing one
/// WorkerLocal across several parallel_chunks calls is fine -- slots carry
/// over, so make the scratch type's state self-invalidating (e.g. epoch
/// stamps) if it must not leak between calls.
template <typename T>
class WorkerLocal {
 public:
  WorkerLocal() : slots_(static_cast<std::size_t>(max_threads())) {}

  /// Scratch for `worker`, constructing it with `make()` on first use.
  template <typename Make>
  T& local(int worker, Make&& make) {
    auto& slot = slots_[static_cast<std::size_t>(worker)];
    if (!slot) slot.reset(new T(make()));
    return *slot;
  }

  std::size_t size() const { return slots_.size(); }

 private:
  std::vector<std::unique_ptr<T>> slots_;
};

/// Convenience: deterministic parallel sum of f(i) over [begin, end).
template <typename F>
double parallel_sum(std::int64_t begin, std::int64_t end, F&& f,
                    ParOpts opts = {}) {
  return parallel_reduce(
      begin, end, 0.0,
      [&](std::int64_t cb, std::int64_t ce) {
        double s = 0.0;
        for (std::int64_t i = cb; i < ce; ++i) s += f(i);
        return s;
      },
      [](double a, double b) { return a + b; }, opts);
}

}  // namespace spar::support::par
