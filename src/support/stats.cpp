#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <vector>

#include "support/assert.hpp"

namespace spar::support {

Summary summarize(std::span<const double> values) {
  Summary s;
  s.count = values.size();
  if (values.empty()) return s;
  double sum = 0.0;
  s.min = values.front();
  s.max = values.front();
  for (double v : values) {
    sum += v;
    s.min = std::min(s.min, v);
    s.max = std::max(s.max, v);
  }
  s.mean = sum / static_cast<double>(values.size());
  double sq = 0.0;
  for (double v : values) sq += (v - s.mean) * (v - s.mean);
  s.stddev = values.size() > 1
                 ? std::sqrt(sq / static_cast<double>(values.size() - 1))
                 : 0.0;
  return s;
}

double percentile(std::span<const double> values, double p) {
  SPAR_CHECK(!values.empty(), "percentile of empty span");
  SPAR_CHECK(p >= 0.0 && p <= 1.0, "percentile p must be in [0,1]");
  std::vector<double> sorted(values.begin(), values.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = p * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

PowerFit fit_power_law(std::span<const double> x, std::span<const double> y) {
  SPAR_CHECK(x.size() == y.size(), "fit_power_law: size mismatch");
  SPAR_CHECK(x.size() >= 2, "fit_power_law: need at least two points");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0, syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    SPAR_CHECK(x[i] > 0.0 && y[i] > 0.0, "fit_power_law: data must be positive");
    const double lx = std::log(x[i]);
    const double ly = std::log(y[i]);
    sx += lx;
    sy += ly;
    sxx += lx * lx;
    sxy += lx * ly;
    syy += ly * ly;
  }
  const double denom = n * sxx - sx * sx;
  PowerFit fit;
  if (std::abs(denom) < 1e-30) return fit;  // all x equal: undefined slope
  fit.exponent = (n * sxy - sx * sy) / denom;
  fit.coefficient = std::exp((sy - fit.exponent * sx) / n);
  const double ss_tot = syy - sy * sy / n;
  double ss_res = 0.0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = std::log(fit.coefficient) + fit.exponent * std::log(x[i]);
    const double resid = std::log(y[i]) - pred;
    ss_res += resid * resid;
  }
  fit.r_squared = ss_tot > 0.0 ? 1.0 - ss_res / ss_tot : 1.0;
  return fit;
}

double correlation(std::span<const double> x, std::span<const double> y) {
  SPAR_CHECK(x.size() == y.size() && x.size() >= 2, "correlation: bad sizes");
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

}  // namespace spar::support
