// Deterministic random number generation for libspar.
//
// Two layers:
//  * Rng          - xoshiro256** sequential generator, seeded via SplitMix64.
//  * StreamRng    - counter-based splittable streams: stream(seed, index)
//                   yields an independent generator per vertex/edge, so
//                   randomized parallel algorithms produce results that do not
//                   depend on the number of threads or iteration order.
//
// All randomized algorithms in libspar take an explicit 64-bit seed and derive
// every random decision from these generators; there is no hidden global state.
#pragma once

#include <cstdint>
#include <limits>

namespace spar::support {

/// SplitMix64 step: the standard 64-bit mixer used for seeding and for
/// counter-based streams. Passes BigCrush when used as a generator.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  state += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = state;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Stateless mix of two 64-bit values into one; used to derive per-index
/// stream seeds as mix(seed, index).
constexpr std::uint64_t mix64(std::uint64_t a, std::uint64_t b) {
  std::uint64_t s = a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2));
  return splitmix64(s);
}

/// xoshiro256** by Blackman & Vigna. Small, fast, high quality.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eed5eed5eed5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& word : s_) word = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return std::numeric_limits<result_type>::max(); }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() { return static_cast<double>((*this)() >> 11) * 0x1.0p-53; }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n). Unbiased via rejection (Lemire-style bound).
  std::uint64_t below(std::uint64_t n) {
    if (n == 0) return 0;
    const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
    for (;;) {
      const std::uint64_t r = (*this)();
      if (r >= threshold) return r % n;
    }
  }

  /// Bernoulli trial with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Standard normal via Box-Muller (uses two uniforms per pair, caches one).
  double normal();

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool have_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

/// Independent generator for logical stream `index` under master `seed`.
/// Same (seed, index) always yields the same stream regardless of threads.
inline Rng stream_rng(std::uint64_t seed, std::uint64_t index) {
  return Rng(mix64(seed, index));
}

/// One deterministic uniform in [0,1) for (seed, index) without constructing
/// a generator; handy for per-edge coin flips in parallel loops.
inline double stream_uniform(std::uint64_t seed, std::uint64_t index) {
  return static_cast<double>(mix64(seed, index) >> 11) * 0x1.0p-53;
}

}  // namespace spar::support
