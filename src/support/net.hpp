// Hardened stream-socket substrate shared by the solver service
// (src/server) and the sharded distributed runtime (src/dist).
//
// Extracted from src/server/socket.* once the distributed layer needed the
// same primitives: ONE audited implementation of full-length transfers,
// SIGPIPE immunity and RAII fd ownership instead of drifting copies. Two
// address families are supported:
//
//  * AF_UNIX stream sockets -- the default for both consumers (a local
//    daemon sharing chains between processes; a single-machine shard mesh):
//    no TCP stack, no address configuration, file permissions as access
//    control.
//  * TCP over the loopback interface -- the recorded ROADMAP item 3
//    extension. Listeners bind 127.0.0.1 ONLY by default; nothing in this
//    repo opens a port to the network unless `any_interface` is requested
//    explicitly.
//
// The transfer discipline is what the framed wire protocols need:
//
//  * read_exact / write_exact - full-length transfers with EINTR retry
//    (short reads/writes are normal on stream sockets; the framing layers
//    must never see them)
//  * write_exact sends with MSG_NOSIGNAL - a vanished peer surfaces as a
//    thrown EPIPE, not SIGPIPE killing the process
//  * shutdown_rw - wake a thread parked in read_exact from another thread
//    without racing the fd's lifetime
//
// Nothing here knows about frames or messages; see src/server/protocol.hpp
// and src/dist/transport.hpp for the two framing layers on top.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace spar::support::net {

/// One connected stream socket (client side or an accepted server-side
/// connection), UNIX-domain or TCP. Move-only; closes the fd on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Reads exactly `len` bytes, retrying on EINTR and short reads. Returns
  /// false on clean EOF before the first byte; throws spar::Error on I/O
  /// errors or EOF mid-message (a truncated frame is a protocol violation,
  /// not a clean shutdown).
  bool read_exact(void* data, std::size_t len) const;

  /// Writes exactly `len` bytes, retrying on EINTR and short writes.
  /// Sends with MSG_NOSIGNAL: a closed peer throws spar::Error (EPIPE)
  /// instead of raising SIGPIPE against the whole process.
  void write_exact(const void* data, std::size_t len) const;

  /// Half-closes both directions without releasing the fd: a thread blocked
  /// in read_exact sees EOF and unwinds while the owner still holds the
  /// Socket. Safe to call from another thread; idempotent.
  void shutdown_rw() const;

  void close();

 private:
  int fd_ = -1;
};

/// A listening stream socket: either bound to a filesystem path (AF_UNIX)
/// or to a loopback TCP port. Unlinks any stale UNIX socket file at bind
/// time and removes its own on destruction.
class Listener {
 public:
  /// Listen on a UNIX-domain socket at `path` (replacing a stale file).
  static Listener unix_domain(const std::string& path, int backlog = 64);

  /// Listen on TCP `port` (0 = kernel-assigned; read back via port()).
  /// Binds 127.0.0.1 unless `any_interface` -- loopback-only by default.
  static Listener tcp(std::uint16_t port, int backlog = 64,
                      bool any_interface = false);

  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Blocks until a client connects; returns the accepted connection.
  /// Returns an invalid Socket if the listener was shut down concurrently.
  Socket accept() const;

  /// Wakes any blocked accept() by closing the listening fd (idempotent).
  void shutdown();

  bool valid() const { return fd_ >= 0; }

  /// Bound UNIX socket path (empty for TCP listeners).
  const std::string& path() const { return path_; }

  /// Bound TCP port (0 for UNIX listeners). For tcp(0, ...) this is the
  /// kernel-assigned ephemeral port.
  std::uint16_t port() const { return port_; }

 private:
  Listener() = default;

  int fd_ = -1;
  std::string path_;
  std::uint16_t port_ = 0;
};

/// Connects to a listening UNIX socket at `path`. Throws spar::Error if the
/// server is not there.
Socket connect_unix(const std::string& path);

/// Connects to TCP `port` on 127.0.0.1. Throws spar::Error on failure.
Socket connect_tcp(std::uint16_t port);

}  // namespace spar::support::net
