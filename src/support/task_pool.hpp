// Persistent worker-thread pool: the async execution substrate behind the
// solver service (src/server) and, when scoped in, behind the parallel_*
// loops of support/parallel.hpp.
//
// The fork-join substrate (parallel_for / parallel_chunks / parallel_reduce)
// spins a parallel region up and down per call, which is fine inside one
// algorithm but wrong for a long-lived service: admission, batching and
// solves must run CONCURRENTLY, and a solve's internal parallel loops must
// not fight the service's own threads for cores (oversubscription). TaskPool
// is the promotion: a fixed set of worker threads that execute
//
//  * detached tasks / futures (submit() / async()) -- the service's batch
//    executors, and
//  * indexed groups (run_indexed()) -- the engine the parallel_* loops
//    dispatch through when a pool is current on the calling thread.
//
// Scoping: TaskPool::Use pins a pool as "current" for the calling thread;
// pool workers are permanently current on themselves. While a pool is
// current, parallel_for / parallel_chunks / parallel_reduce (and everything
// built on them) run their chunks on the pool instead of OpenMP. Chunk
// boundaries and reduction combine order are computed exactly as before --
// they depend only on (range, grain), never on who executes -- so every
// deterministic contract of the substrate (bit-identical reductions, stable
// edge ids, golden hashes) holds verbatim under pool execution.
//
// Deadlock freedom / no oversubscription: run_indexed is a claim loop -- the
// calling thread HELPS, claiming indices of its own group alongside the
// workers, and a nested run_indexed from inside a task claims its own
// indices the same way. A thread therefore never blocks while its group has
// unclaimed work, nesting cannot deadlock, and the thread count in flight
// never exceeds workers() + external callers.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

namespace spar::support::par {

class TaskPool;

namespace detail {
/// Thread-local "current pool" consulted by the parallel_* loops; set by
/// TaskPool::Use on external threads and permanently by workers on
/// themselves.
inline thread_local TaskPool* tls_current_pool = nullptr;
/// Pool this thread is a worker of (null for external threads).
inline thread_local TaskPool* tls_home_pool = nullptr;
/// Worker id inside tls_home_pool: 1..workers(); 0 for external threads.
inline thread_local int tls_worker_id = 0;
}  // namespace detail

class TaskPool {
 public:
  /// Starts `threads` workers (clamped to >= 1).
  explicit TaskPool(int threads);

  /// Drains detached tasks, then stops and joins the workers. Destroying a
  /// pool while another thread is inside run_indexed / waiting on an async
  /// future from it is a caller bug.
  ~TaskPool();

  TaskPool(const TaskPool&) = delete;
  TaskPool& operator=(const TaskPool&) = delete;

  /// Number of worker threads.
  int workers() const noexcept { return static_cast<int>(threads_.size()); }

  /// Widest set of threads one run_indexed group can execute on: the workers
  /// plus the (helping) calling thread. This is what max_threads() reports
  /// while the pool is current, and the bound on worker ids passed to group
  /// bodies.
  int parallel_width() const noexcept { return workers() + 1; }

  /// Enqueues a detached task. `fn` must not throw (a throwing detached task
  /// calls std::terminate via the worker); use async() when the result or
  /// the exception matters.
  void submit(std::function<void()> fn);

  /// Enqueues `fn` and returns a future for its result; exceptions propagate
  /// through the future.
  template <typename F>
  auto async(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> out = task->get_future();
    submit_nothrow([task] { (*task)(); });
    return out;
  }

  /// Runs body(index, worker) for every index in [0, count), blocking until
  /// all complete. Indices are claimed dynamically by the workers AND the
  /// calling thread (which helps); `worker` identifies the executing thread,
  /// is stable for the duration of the call, and is < parallel_width().
  /// Safe to call from inside pool tasks (nested groups claim the same way).
  /// The first exception a body throws is rethrown here after the group
  /// drains.
  void run_indexed(std::int64_t count,
                   const std::function<void(std::int64_t, int)>& body);

  /// The pool current on this thread (set by Use, or the worker's own pool),
  /// or null. Consulted by the parallel_* loops in parallel.hpp.
  static TaskPool* current() noexcept { return detail::tls_current_pool; }

  /// RAII scope pinning a pool as current() for this thread, so parallel_*
  /// loops (and the algorithms built on them) execute on the pool.
  class Use {
   public:
    explicit Use(TaskPool* pool) : saved_(detail::tls_current_pool) {
      detail::tls_current_pool = pool;
    }
    ~Use() { detail::tls_current_pool = saved_; }
    Use(const Use&) = delete;
    Use& operator=(const Use&) = delete;

   private:
    TaskPool* saved_;
  };

 private:
  /// One run_indexed call in flight: indices are claimed via `next`,
  /// completion tracked via `done`. Lives on the caller's stack; the caller
  /// may not return (and destroy it) until done == count AND no worker still
  /// holds a pointer to it (`claimers`, guarded by mu_, incremented in the
  /// same critical section in which a worker takes the group from active_).
  struct Group {
    const std::function<void(std::int64_t, int)>* body = nullptr;
    std::int64_t count = 0;
    std::atomic<std::int64_t> next{0};
    std::atomic<std::int64_t> done{0};
    int claimers = 0;  ///< workers inside claim_loop on this group (mu_)
    std::mutex error_mu;
    std::exception_ptr error;  ///< first exception, guarded by error_mu
  };

  void submit_nothrow(std::function<void()> fn);
  void worker_main(int id);
  /// Claims and runs indices of `g` until exhausted; `worker` is the
  /// executing thread's id for body calls.
  void claim_loop(Group& g, int worker);
  /// Removes `g` from the active list if still there (called once its
  /// indices are exhausted).
  void retire(Group& g);

  std::mutex mu_;
  std::condition_variable work_cv_;  ///< workers: new tasks/groups or stop
  std::condition_variable done_cv_;  ///< run_indexed callers: group finished
  std::deque<std::function<void()>> detached_;
  std::vector<Group*> active_;  ///< groups with unclaimed indices
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace spar::support::par
