// Checksum + framing primitives shared by the SPARBIN file format and the
// solver-service wire protocol.
//
// Extracted from src/graph/io_binary.cpp so the two byte-level consumers --
// on-disk graphs and length-prefixed socket frames -- share ONE audited
// implementation of the chunked-FNV discipline instead of drifting copies.
// The values produced here are part of the SPARBIN v1 format: any change
// breaks every .spb file in the wild, and the io tests pin them.
//
// Determinism: checksum_bytes folds per-chunk FNV-1a states in ascending
// chunk order with chunk boundaries from default_grain -- a pure function of
// the length -- so the checksum is identical for every thread count and for
// the serial build. ChunkedHasher is the incremental mirror for payloads
// that arrive in slices (streamed file reads, socket frames): same chunk
// boundaries, same fold, bit-identical result.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::support::framing {

/// FNV-1a offset basis: the initial per-chunk hash state.
inline constexpr std::uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;

/// Plain sequential FNV-1a over `len` bytes, continuing from state `h`.
inline std::uint64_t fnv1a(const unsigned char* p, std::size_t len,
                           std::uint64_t h) {
  constexpr std::uint64_t kPrime = 0x100000001b3ULL;
  for (std::size_t i = 0; i < len; ++i) {
    h ^= p[i];
    h *= kPrime;
  }
  return h;
}

/// Chunked FNV-1a folded in chunk order. Chunk boundaries come from
/// default_grain (a pure function of the length), so the value is identical
/// for every thread count and for the serial build. The seed binds caller
/// context (header fields, previous arrays) into the digest.
inline std::uint64_t checksum_bytes(const void* data, std::size_t len,
                                    std::uint64_t seed) {
  const auto* bytes = static_cast<const unsigned char*>(data);
  return par::parallel_reduce(
      0, static_cast<std::int64_t>(len), support::mix64(seed, len),
      [&](std::int64_t cb, std::int64_t ce) {
        return fnv1a(bytes + cb, static_cast<std::size_t>(ce - cb), kFnvOffsetBasis);
      },
      [](std::uint64_t acc, std::uint64_t part) { return support::mix64(acc, part); });
}

/// Incremental mirror of checksum_bytes for one byte array whose content
/// arrives in sequential slices: chunk boundaries are derived from the TOTAL
/// length declared to init() (exactly as checksum_bytes derives them),
/// per-chunk FNV states roll across feed() calls, and fold(seed) reproduces
/// checksum_bytes(data, len, seed) bit for bit. Chunk count is capped at
/// 4096 by default_grain, so the deferred part list is tiny.
struct ChunkedHasher {
  std::uint64_t len = 0;                ///< total bytes declared to init()
  std::int64_t grain = 1;               ///< chunk size (from default_grain)
  std::vector<std::uint64_t> parts;     ///< completed per-chunk FNV states
  std::uint64_t cur = kFnvOffsetBasis;  ///< in-progress chunk state
  std::int64_t in_chunk = 0;            ///< bytes consumed of the open chunk

  /// Declares the total array length and resets all rolling state.
  void init(std::uint64_t total_bytes) {
    len = total_bytes;
    grain = par::default_grain(static_cast<std::int64_t>(total_bytes));
    parts.clear();
    cur = kFnvOffsetBasis;
    in_chunk = 0;
  }

  /// Consumes the next `k` bytes of the array.
  void feed(const void* data, std::size_t k) {
    const auto* p = static_cast<const unsigned char*>(data);
    while (k > 0) {
      const auto take = std::min<std::size_t>(k, static_cast<std::size_t>(grain - in_chunk));
      cur = fnv1a(p, take, cur);
      in_chunk += static_cast<std::int64_t>(take);
      p += take;
      k -= take;
      if (in_chunk == grain) {
        parts.push_back(cur);
        cur = kFnvOffsetBasis;
        in_chunk = 0;
      }
    }
  }

  /// Finalize (flushing a short tail chunk) and fold under `seed`, exactly as
  /// checksum_bytes combines: identity mix64(seed, len), then parts in order.
  std::uint64_t fold(std::uint64_t seed) {
    if (in_chunk > 0) {
      parts.push_back(cur);
      cur = kFnvOffsetBasis;
      in_chunk = 0;
    }
    std::uint64_t h = support::mix64(seed, len);
    for (const std::uint64_t part : parts) h = support::mix64(h, part);
    return h;
  }
};

}  // namespace spar::support::framing
