#include "support/parallel.hpp"

#include <string>

namespace spar::support::par {

std::string backend_description() {
  std::string out = TaskPool::current() != nullptr ? "task_pool"
                    : openmp_enabled()            ? "openmp"
                                                  : "serial";
  out += ", max_threads=" + std::to_string(max_threads());
  out += ", hardware_threads=" + std::to_string(hardware_threads());
  return out;
}

}  // namespace spar::support::par
