// Console table printer. Every bench in bench/ emits its results through a
// Table so the "regenerated table" for each experiment is a single aligned
// block that can be diffed across runs.
#pragma once

#include <string>
#include <vector>

namespace spar::support {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Append one row; cells beyond the header count are dropped, missing cells
  /// are rendered empty.
  void add_row(std::vector<std::string> cells);

  /// Convenience: format doubles with %.4g, integers as-is.
  static std::string cell(double value);
  static std::string cell(std::uint64_t value);
  static std::string cell(std::int64_t value);

  /// Render with a title line, header row, separator, and aligned columns.
  std::string to_string(const std::string& title) const;

  void print(const std::string& title) const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace spar::support
