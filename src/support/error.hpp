// Exception type thrown at libspar API boundaries on precondition violations
// (malformed input graphs, out-of-range parameters, I/O failures).
#pragma once

#include <stdexcept>
#include <string>

namespace spar {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

}  // namespace spar
