// Wall-clock timer used by benches and examples.
#pragma once

#include <chrono>

namespace spar::support {

class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace spar::support
