#include "support/table.hpp"

#include <cstdint>
#include <cstdio>
#include <sstream>

namespace spar::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.4g", value);
  return buf;
}

std::string Table::cell(std::uint64_t value) { return std::to_string(value); }
std::string Table::cell(std::int64_t value) { return std::to_string(value); }

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > widths[c]) widths[c] = row[c].size();

  std::ostringstream out;
  out << "== " << title << " ==\n";
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      const std::string& text = c < row.size() ? row[c] : std::string();
      out << text;
      for (std::size_t pad = text.size(); pad < widths[c] + 2; ++pad) out << ' ';
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (auto w : widths) total += w + 2;
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

}  // namespace spar::support
