// Machine-independent work accounting.
//
// The paper's guarantees (Theorems 1, 4, 5, 6) are stated as PRAM *work*
// bounds. Wall-clock time depends on the machine, but work -- the number of
// elementary edge/arithmetic operations an algorithm performs -- does not.
// Algorithms in libspar report work through a WorkCounter so benches can
// verify the O(m log^2 n log^3 rho / eps^2)-type shapes directly.
//
// Counters are accumulated per OpenMP thread (padded to avoid false sharing)
// and summed on read, so hot loops pay one uncontended increment.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace spar::support {

class WorkCounter {
 public:
  WorkCounter();

  /// Add `amount` units of work from the calling thread.
  void add(std::uint64_t amount) noexcept;

  /// Total work across all threads since construction or last reset().
  std::uint64_t total() const noexcept;

  void reset() noexcept;

 private:
  struct alignas(64) Slot {
    std::uint64_t value = 0;
  };
  std::vector<Slot> slots_;
};

/// A scoped view that adds to an optional counter; algorithms accept a
/// `WorkCounter*` (may be null) and wrap it in WorkScope so call sites stay
/// branch-free and readable.
class WorkScope {
 public:
  explicit WorkScope(WorkCounter* counter) noexcept : counter_(counter) {}

  void add(std::uint64_t amount) const noexcept {
    if (counter_ != nullptr) counter_->add(amount);
  }

  bool enabled() const noexcept { return counter_ != nullptr; }

 private:
  WorkCounter* counter_;
};

}  // namespace spar::support
