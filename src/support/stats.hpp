// Small statistics helpers used by tests and benches: summary statistics and
// a least-squares power-law fit y = c * x^alpha for verifying asymptotic
// shapes (e.g. "size grows like n log n" => alpha close to 1 on n/log-scaled
// data).
#pragma once

#include <cstddef>
#include <span>

namespace spar::support {

struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

Summary summarize(std::span<const double> values);

/// p in [0,1]; linear interpolation between order statistics.
double percentile(std::span<const double> values, double p);

struct PowerFit {
  double exponent = 0.0;   ///< alpha in y ~ c * x^alpha
  double coefficient = 0.0;///< c
  double r_squared = 0.0;  ///< goodness of fit in log-log space
};

/// Least-squares fit of log y against log x. Requires positive data.
PowerFit fit_power_law(std::span<const double> x, std::span<const double> y);

/// Pearson correlation of x and y.
double correlation(std::span<const double> x, std::span<const double> y);

}  // namespace spar::support
