#include "support/net.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "support/error.hpp"

namespace spar::support::net {

namespace {

[[noreturn]] void fail(const std::string& what) {
  throw spar::Error(what + ": " + std::strerror(errno));
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() + 1 > sizeof(addr.sun_path))
    throw spar::Error("socket path too long: " + path);
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

sockaddr_in make_tcp_addr(std::uint16_t port, bool any_interface) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(any_interface ? INADDR_ANY : INADDR_LOOPBACK);
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept : fd_(std::exchange(other.fd_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

bool Socket::read_exact(void* data, std::size_t len) const {
  auto* p = static_cast<unsigned char*>(data);
  std::size_t got = 0;
  while (got < len) {
    const ssize_t r = ::read(fd_, p + got, len - got);
    if (r > 0) {
      got += static_cast<std::size_t>(r);
      continue;
    }
    if (r == 0) {
      if (got == 0) return false;  // clean EOF at a message boundary
      throw spar::Error("socket: EOF mid-message (truncated frame)");
    }
    if (errno == EINTR) continue;
    fail("socket read");
  }
  return true;
}

void Socket::write_exact(const void* data, std::size_t len) const {
  const auto* p = static_cast<const unsigned char*>(data);
  std::size_t sent = 0;
  while (sent < len) {
    // MSG_NOSIGNAL: a peer that vanished mid-reply must surface as EPIPE
    // (caught and logged per connection), not SIGPIPE killing the process.
    const ssize_t w = ::send(fd_, p + sent, len - sent, MSG_NOSIGNAL);
    if (w >= 0) {
      sent += static_cast<std::size_t>(w);
      continue;
    }
    if (errno == EINTR) continue;
    fail("socket write");
  }
}

void Socket::shutdown_rw() const {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

Listener Listener::unix_domain(const std::string& path, int backlog) {
  Listener l;
  l.path_ = path;
  l.fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (l.fd_ < 0) fail("socket");
  ::unlink(path.c_str());  // remove a stale socket file from a dead server
  const sockaddr_un addr = make_unix_addr(path);
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind " + path);
  if (::listen(l.fd_, backlog) != 0) fail("listen " + path);
  return l;
}

Listener Listener::tcp(std::uint16_t port, int backlog, bool any_interface) {
  Listener l;
  l.fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (l.fd_ < 0) fail("socket");
  const int one = 1;
  ::setsockopt(l.fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_tcp_addr(port, any_interface);
  if (::bind(l.fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0)
    fail("bind tcp port " + std::to_string(port));
  // Read the bound address back so tcp(0, ...) reports the kernel's pick.
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(l.fd_, reinterpret_cast<sockaddr*>(&addr), &addr_len) != 0)
    fail("getsockname");
  l.port_ = ntohs(addr.sin_port);
  if (::listen(l.fd_, backlog) != 0)
    fail("listen tcp port " + std::to_string(l.port_));
  return l;
}

Listener::Listener(Listener&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      path_(std::move(other.path_)),
      port_(std::exchange(other.port_, 0)) {
  other.path_.clear();
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    shutdown();
    if (!path_.empty()) ::unlink(path_.c_str());
    fd_ = std::exchange(other.fd_, -1);
    path_ = std::move(other.path_);
    other.path_.clear();
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Listener::~Listener() {
  shutdown();
  if (!path_.empty()) ::unlink(path_.c_str());
}

Socket Listener::accept() const {
  while (true) {
    const int client = ::accept(fd_, nullptr, nullptr);
    if (client >= 0) return Socket(client);
    if (errno == EINTR) continue;
    return Socket();  // listener closed (shutdown) or fatal: caller stops
  }
}

void Listener::shutdown() {
  if (fd_ >= 0) {
    // shutdown() wakes a blocked accept(); close() releases the fd.
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Socket connect_unix(const std::string& path) {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const sockaddr_un addr = make_unix_addr(path);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect " + path);
  }
  return Socket(fd);
}

Socket connect_tcp(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) fail("socket");
  const sockaddr_in addr = make_tcp_addr(port, /*any_interface=*/false);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) != 0) {
    const int saved = errno;
    ::close(fd);
    errno = saved;
    fail("connect tcp port " + std::to_string(port));
  }
  return Socket(fd);
}

}  // namespace spar::support::net
