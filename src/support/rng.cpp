#include "support/rng.hpp"

#include <cmath>

namespace spar::support {

double Rng::normal() {
  if (have_cached_normal_) {
    have_cached_normal_ = false;
    return cached_normal_;
  }
  // Box-Muller; guard against log(0).
  double u1 = uniform();
  while (u1 <= 0.0) u1 = uniform();
  const double u2 = uniform();
  const double radius = std::sqrt(-2.0 * std::log(u1));
  const double angle = 2.0 * 3.14159265358979323846 * u2;
  cached_normal_ = radius * std::sin(angle);
  have_cached_normal_ = true;
  return radius * std::cos(angle);
}

}  // namespace spar::support
