// Assertion macros for libspar.
//
// SPAR_ASSERT  - cheap invariant checks, active in all build types.
// SPAR_DASSERT - hot-loop checks, active only when NDEBUG is not defined.
// SPAR_CHECK   - user-facing precondition; throws spar::Error instead of aborting.
#pragma once

#include <cstdio>
#include <cstdlib>

#include "support/error.hpp"

namespace spar::support {

[[noreturn]] inline void assert_fail(const char* expr, const char* file, int line) {
  std::fprintf(stderr, "SPAR_ASSERT failed: %s at %s:%d\n", expr, file, line);
  std::abort();
}

}  // namespace spar::support

#define SPAR_ASSERT(expr)                                             \
  do {                                                                \
    if (!(expr)) ::spar::support::assert_fail(#expr, __FILE__, __LINE__); \
  } while (0)

#ifdef NDEBUG
#define SPAR_DASSERT(expr) ((void)0)
#else
#define SPAR_DASSERT(expr) SPAR_ASSERT(expr)
#endif

#define SPAR_CHECK(expr, msg)              \
  do {                                     \
    if (!(expr)) throw ::spar::Error(msg); \
  } while (0)
