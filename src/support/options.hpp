// Minimal command-line option parser for examples and bench drivers.
// Supports --key=value and --key value and boolean --flag forms.
#pragma once

#include <charconv>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "support/error.hpp"

namespace spar::support {

/// Strict full-token numeric parse. std::strtoll/strtod silently return 0 on
/// garbage ("--rho=abc" used to run with rho = 0); a malformed value is a
/// user error and must say so. `what` names the offending option ("--rho")
/// in the message. Shared by Options and the example/bench drivers.
template <typename T>
T parse_number(const std::string& what, const std::string& token) {
  T out{};
  const char* begin = token.c_str();
  const char* end = begin + token.size();
  const auto [next, ec] = std::from_chars(begin, end, out);
  if (ec != std::errc{} || next != end)
    throw Error("bad numeric value for " + what + ": \"" + token + "\"");
  return out;
}

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace spar::support
