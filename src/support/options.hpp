// Minimal command-line option parser for examples and bench drivers.
// Supports --key=value and --key value and boolean --flag forms.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace spar::support {

class Options {
 public:
  Options(int argc, char** argv);

  bool has(const std::string& key) const;
  std::string get(const std::string& key, const std::string& fallback) const;
  std::int64_t get_int(const std::string& key, std::int64_t fallback) const;
  double get_double(const std::string& key, double fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;

  /// Positional (non --key) arguments, in order.
  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace spar::support
