#include "support/task_pool.hpp"

#include <algorithm>

namespace spar::support::par {

TaskPool::TaskPool(int threads) {
  const int count = std::max(threads, 1);
  threads_.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i)
    threads_.emplace_back([this, i] { worker_main(i + 1); });
}

TaskPool::~TaskPool() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void TaskPool::submit(std::function<void()> fn) { submit_nothrow(std::move(fn)); }

void TaskPool::submit_nothrow(std::function<void()> fn) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    detached_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void TaskPool::worker_main(int id) {
  detail::tls_home_pool = this;
  detail::tls_worker_id = id;
  // Workers are permanently current on their own pool: parallel_* loops
  // inside any task dispatch back here (the helping claim loop makes that
  // nest-safe) instead of spinning up OpenMP teams underneath the pool.
  detail::tls_current_pool = this;
  for (;;) {
    std::function<void()> task;
    Group* group = nullptr;
    {
      std::unique_lock<std::mutex> lk(mu_);
      work_cv_.wait(lk, [&] { return stop_ || !detached_.empty() || !active_.empty(); });
      if (!detached_.empty()) {
        // Detached tasks drain even during shutdown, so a service that
        // enqueued work before stopping never loses it.
        task = std::move(detached_.front());
        detached_.pop_front();
      } else if (!active_.empty()) {
        group = active_.front();
        // Taken in the same critical section: the owning caller cannot
        // destroy the group while claimers > 0.
        ++group->claimers;
      } else {
        return;  // stop_ and nothing left
      }
    }
    if (task) {
      task();  // a throwing detached task terminates; use async() for results
      continue;
    }
    claim_loop(*group, id);
    {
      std::lock_guard<std::mutex> lk(mu_);
      --group->claimers;
    }
    done_cv_.notify_all();
  }
}

void TaskPool::claim_loop(Group& g, int worker) {
  for (;;) {
    const std::int64_t i = g.next.fetch_add(1, std::memory_order_relaxed);
    if (i >= g.count) break;
    try {
      (*g.body)(i, worker);
    } catch (...) {
      std::lock_guard<std::mutex> lk(g.error_mu);
      if (!g.error) g.error = std::current_exception();
    }
    if (g.done.fetch_add(1, std::memory_order_acq_rel) + 1 == g.count) {
      // Pair the notify with the waiter's predicate lock so it cannot slip
      // between the waiter's check and its sleep.
      std::lock_guard<std::mutex> lk(mu_);
      done_cv_.notify_all();
    }
  }
  retire(g);
}

void TaskPool::retire(Group& g) {
  std::lock_guard<std::mutex> lk(mu_);
  for (auto it = active_.begin(); it != active_.end(); ++it) {
    if (*it == &g) {
      active_.erase(it);
      break;
    }
  }
}

void TaskPool::run_indexed(std::int64_t count,
                           const std::function<void(std::int64_t, int)>& body) {
  if (count <= 0) return;
  const int me = (detail::tls_home_pool == this) ? detail::tls_worker_id : 0;
  if (count == 1 || workers() == 0) {
    for (std::int64_t i = 0; i < count; ++i) body(i, me);
    return;
  }
  Group g;
  g.body = &body;
  g.count = count;
  {
    std::lock_guard<std::mutex> lk(mu_);
    active_.push_back(&g);
  }
  work_cv_.notify_all();
  claim_loop(g, me);  // help: claim our own group's indices alongside workers
  {
    std::unique_lock<std::mutex> lk(mu_);
    done_cv_.wait(lk, [&] {
      return g.done.load(std::memory_order_acquire) == g.count && g.claimers == 0;
    });
  }
  if (g.error) std::rethrow_exception(g.error);
}

}  // namespace spar::support::par
