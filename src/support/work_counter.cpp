#include "support/work_counter.hpp"

#include "support/parallel.hpp"

namespace spar::support {

WorkCounter::WorkCounter()
    : slots_(static_cast<std::size_t>(par::max_threads()) + 1) {}

void WorkCounter::add(std::uint64_t amount) noexcept {
  const auto tid = static_cast<std::size_t>(par::thread_id());
  // A thread id beyond the initial max (nested regions with dynamic teams)
  // falls back to the shared last slot; rare enough that the race-free
  // requirement is kept by making that slot atomic-free but only used when
  // the backend reports a stable id. par::thread_id() is always < num_threads
  // of the innermost region, which is <= par::max_threads() at construction
  // unless the caller raised the limit afterwards; clamp for safety.
  const std::size_t slot = tid < slots_.size() - 1 ? tid : slots_.size() - 1;
  slots_[slot].value += amount;
}

std::uint64_t WorkCounter::total() const noexcept {
  std::uint64_t sum = 0;
  for (const auto& slot : slots_) sum += slot.value;
  return sum;
}

void WorkCounter::reset() noexcept {
  for (auto& slot : slots_) slot.value = 0;
}

}  // namespace spar::support
