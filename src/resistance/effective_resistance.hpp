// Effective resistances (Section 2 of the paper).
//
// R_{u,v}[G] is the potential difference needed to push one unit of current
// from u to v. Algebraically R_{u,v} = (e_u - e_v)^T pinv(L_G) (e_u - e_v).
// Two paths are provided:
//
//  * exact_* : dense pseudoinverse (O(n^3)); the ground truth used to verify
//    Lemma 1 (off-bundle leverage scores w_e R_e <= 2 log n / t) and the
//    oversampling baseline on small graphs.
//  * approx_effective_resistances : the Spielman-Srivastava estimator --
//    O(log n / eps^2) random +-1 projections of the weighted incidence
//    matrix, each requiring one Laplacian CG solve. This is the standard
//    solver-based scheme the paper's solve-free approach is positioned
//    against.
#pragma once

#include <cstdint>

#include "graph/graph.hpp"
#include "linalg/dense.hpp"
#include "linalg/vector_ops.hpp"

namespace spar::resistance {

/// Effective resistance between every edge's endpoints, exactly (dense).
/// Requires a connected graph; O(n^3) time, intended for n <= ~1500.
linalg::Vector exact_effective_resistances(const graph::Graph& g);

/// Exact effective resistance between an arbitrary vertex pair.
double exact_effective_resistance(const graph::Graph& g, graph::Vertex u,
                                  graph::Vertex v);

/// Dense pinv(L_G); exposed because the spectral certifier reuses it.
linalg::DenseMatrix laplacian_pinv(const graph::Graph& g);

/// Knobs of the Spielman-Srivastava JL estimator.
struct ApproxResistanceOptions {
  double epsilon = 0.3;        ///< JL distortion target
  std::uint64_t seed = 7;      ///< seed of the +-1 projection coins
  double cg_tolerance = 1e-7;  ///< relative residual per Laplacian solve
  std::size_t cg_max_iterations = 4000;  ///< iteration cap per solve
  /// Number of random projections; 0 = auto: ceil(8 log n / eps^2).
  std::size_t num_probes = 0;
  /// Probes solved per blocked CG call (the JL sketch is a multi-RHS solve;
  /// batching shares each Laplacian traversal across the block). 0 = auto
  /// (16). The result is independent of the block size: each probe's solve is
  /// bit-identical whatever block it lands in.
  std::size_t block_size = 0;
};

/// Spielman-Srivastava approximate effective resistances for every edge.
/// Expected multiplicative error (1 +- eps) per edge w.h.p. The O(log n /
/// eps^2) probe solves run through the batched blocked-CG path in blocks of
/// `block_size` columns.
///
/// Connectivity is NOT required (unlike the exact_* path): every sketch RHS
/// is a signed incidence accumulation B^T W^{1/2} q, which is mean-free
/// within each connected component, so the CG Krylov space stays inside the
/// per-component range of L and each probe resolves against the
/// block-diagonal pseudoinverse. Edges of each component get the resistances
/// of that component in isolation -- no current leaks across components
/// (pinned by ApproxResistance.DisconnectedGraphResolvesPerComponent).
linalg::Vector approx_effective_resistances(const graph::Graph& g,
                                            const ApproxResistanceOptions& options = {});

/// Leverage scores w_e * R_e from a resistance vector.
linalg::Vector leverage_scores(const graph::Graph& g, const linalg::Vector& resistances);

}  // namespace spar::resistance
