#include "resistance/effective_resistance.hpp"

#include <cmath>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "linalg/cg.hpp"
#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::resistance {

using graph::Graph;
using graph::Vertex;
using linalg::DenseMatrix;
using linalg::Vector;

DenseMatrix laplacian_pinv(const Graph& g) {
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "laplacian_pinv: graph must be connected");
  const DenseMatrix dense = DenseMatrix::from_csr(linalg::laplacian_matrix(g));
  return linalg::symmetric_pinv(dense);
}

Vector exact_effective_resistances(const Graph& g) {
  const DenseMatrix pinv = laplacian_pinv(g);
  const auto edges = g.edges();
  Vector r(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Vertex u = edges[i].u;
    const Vertex v = edges[i].v;
    r[i] = pinv.at(u, u) - 2.0 * pinv.at(u, v) + pinv.at(v, v);
  }
  return r;
}

double exact_effective_resistance(const Graph& g, Vertex u, Vertex v) {
  SPAR_CHECK(u < g.num_vertices() && v < g.num_vertices(),
             "exact_effective_resistance: vertex out of range");
  const DenseMatrix pinv = laplacian_pinv(g);
  return pinv.at(u, u) - 2.0 * pinv.at(u, v) + pinv.at(v, v);
}

Vector approx_effective_resistances(const Graph& g,
                                    const ApproxResistanceOptions& options) {
  const std::size_t n = g.num_vertices();
  const auto edges = g.edges();
  SPAR_CHECK(n >= 2, "approx_effective_resistances: need at least 2 vertices");

  const std::size_t probes =
      options.num_probes != 0
          ? options.num_probes
          : static_cast<std::size_t>(std::ceil(
                8.0 * std::log(static_cast<double>(n)) /
                (options.epsilon * options.epsilon)));

  const linalg::LaplacianOperator lap(g);
  const linalg::LinearOperator op{
      n, [&lap](std::span<const double> x, std::span<double> y) { lap.apply(x, y); }};

  // R_e ~ sum_i (z_i[u] - z_i[v])^2 where z_i = pinv(L) B^T W^{1/2} q_i and
  // q_i has +-1/sqrt(probes) entries, one per edge.
  Vector r(edges.size(), 0.0);
  Vector rhs(n), z(n);
  const double scale = 1.0 / std::sqrt(static_cast<double>(probes));
  for (std::size_t probe = 0; probe < probes; ++probe) {
    // rhs = B^T W^{1/2} q: accumulate +-sqrt(w_e) at the endpoints.
    linalg::fill(rhs, 0.0);
    for (std::size_t eidx = 0; eidx < edges.size(); ++eidx) {
      const double sign =
          support::stream_uniform(options.seed,
                                  support::mix64(probe, eidx)) < 0.5
              ? -1.0
              : 1.0;
      const double val = sign * scale * std::sqrt(edges[eidx].w);
      rhs[edges[eidx].u] += val;
      rhs[edges[eidx].v] -= val;
    }
    linalg::fill(z, 0.0);
    linalg::CGOptions cg;
    cg.tolerance = options.cg_tolerance;
    cg.max_iterations = options.cg_max_iterations;
    cg.project_constant = true;
    linalg::conjugate_gradient(op, rhs, z, cg);
    support::par::parallel_for(
        0, static_cast<std::int64_t>(edges.size()),
        [&](std::int64_t eidx) {
          const double d = z[edges[eidx].u] - z[edges[eidx].v];
          r[eidx] += d * d;
        },
        {.enable = edges.size() > (1u << 15)});
  }
  return r;
}

Vector leverage_scores(const Graph& g, const Vector& resistances) {
  SPAR_CHECK(resistances.size() == g.num_edges(), "leverage_scores: size mismatch");
  const auto edges = g.edges();
  Vector lev(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) lev[i] = edges[i].w * resistances[i];
  return lev;
}

}  // namespace spar::resistance
