#include "resistance/effective_resistance.hpp"

#include <algorithm>
#include <cmath>

#include "graph/csr.hpp"
#include "graph/traversal.hpp"
#include "linalg/cg.hpp"
#include "linalg/laplacian.hpp"
#include "support/assert.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"

namespace spar::resistance {

using graph::Graph;
using graph::Vertex;
using linalg::DenseMatrix;
using linalg::Vector;

DenseMatrix laplacian_pinv(const Graph& g) {
  SPAR_CHECK(graph::is_connected(graph::CSRGraph(g)),
             "laplacian_pinv: graph must be connected");
  const DenseMatrix dense = DenseMatrix::from_csr(linalg::laplacian_matrix(g));
  return linalg::symmetric_pinv(dense);
}

Vector exact_effective_resistances(const Graph& g) {
  const DenseMatrix pinv = laplacian_pinv(g);
  const auto edges = g.edges();
  Vector r(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) {
    const Vertex u = edges[i].u;
    const Vertex v = edges[i].v;
    r[i] = pinv.at(u, u) - 2.0 * pinv.at(u, v) + pinv.at(v, v);
  }
  return r;
}

double exact_effective_resistance(const Graph& g, Vertex u, Vertex v) {
  SPAR_CHECK(u < g.num_vertices() && v < g.num_vertices(),
             "exact_effective_resistance: vertex out of range");
  const DenseMatrix pinv = laplacian_pinv(g);
  return pinv.at(u, u) - 2.0 * pinv.at(u, v) + pinv.at(v, v);
}

Vector approx_effective_resistances(const Graph& g,
                                    const ApproxResistanceOptions& options) {
  const std::size_t n = g.num_vertices();
  const auto edges = g.edges();
  SPAR_CHECK(n >= 2, "approx_effective_resistances: need at least 2 vertices");

  const std::size_t probes =
      options.num_probes != 0
          ? options.num_probes
          : static_cast<std::size_t>(std::ceil(
                8.0 * std::log(static_cast<double>(n)) /
                (options.epsilon * options.epsilon)));
  const std::size_t block_size = options.block_size != 0 ? options.block_size : 16;

  // The JL sketch is an inherently multi-RHS workload: every probe is one
  // Laplacian solve against the same operator. Solving them in blocks through
  // blocked CG streams the Laplacian once per iteration for the whole block
  // instead of once per probe. The explicit CSR form feeds the blocked
  // kernel; row accumulation is deterministic, so the sketch is bit-identical
  // across thread counts AND across block sizes (each probe's solve is the
  // same column recurrence wherever it lands).
  const linalg::CSRMatrix lap = linalg::laplacian_matrix(g);
  const linalg::BlockOperator op{
      n, [&lap](const linalg::MultiVector& x, linalg::MultiVector& y) {
        lap.multiply(x, y);
      }};

  // R_e ~ sum_i (z_i[u] - z_i[v])^2 where z_i = pinv(L) B^T W^{1/2} q_i and
  // q_i has +-1/sqrt(probes) entries, one per edge.
  Vector r(edges.size(), 0.0);
  const double scale = 1.0 / std::sqrt(static_cast<double>(probes));
  for (std::size_t base = 0; base < probes; base += block_size) {
    const std::size_t width = std::min(block_size, probes - base);
    linalg::MultiVector rhs(n, width, 0.0), z(n, width, 0.0);
    // rhs_j = B^T W^{1/2} q_{base+j}: accumulate +-sqrt(w_e) at the
    // endpoints. Columns are independent, so they fill in parallel; each
    // column's serial edge loop keeps its accumulation order fixed.
    support::par::parallel_for(
        0, static_cast<std::int64_t>(width),
        [&](std::int64_t jj) {
          const std::size_t j = static_cast<std::size_t>(jj);
          const std::size_t probe = base + j;
          for (std::size_t eidx = 0; eidx < edges.size(); ++eidx) {
            const double sign =
                support::stream_uniform(options.seed,
                                        support::mix64(probe, eidx)) < 0.5
                    ? -1.0
                    : 1.0;
            const double val = sign * scale * std::sqrt(edges[eidx].w);
            rhs.at(edges[eidx].u, j) += val;
            rhs.at(edges[eidx].v, j) -= val;
          }
        },
        {.enable = width > 1});
    linalg::CGOptions cg;
    cg.tolerance = options.cg_tolerance;
    cg.max_iterations = options.cg_max_iterations;
    cg.project_constant = true;
    linalg::blocked_conjugate_gradient(op, rhs, z, cg);
    // Accumulate in ascending probe order (the block loop preserves it), so
    // the sum over probes is order-stable for any block size.
    for (std::size_t j = 0; j < width; ++j) {
      support::par::parallel_for(
          0, static_cast<std::int64_t>(edges.size()),
          [&](std::int64_t eidx) {
            const double d = z.at(edges[eidx].u, j) - z.at(edges[eidx].v, j);
            r[eidx] += d * d;
          },
          {.enable = edges.size() > (1u << 15)});
    }
  }
  return r;
}

Vector leverage_scores(const Graph& g, const Vector& resistances) {
  SPAR_CHECK(resistances.size() == g.num_edges(), "leverage_scores: size mismatch");
  const auto edges = g.edges();
  Vector lev(edges.size());
  for (std::size_t i = 0; i < edges.size(); ++i) lev[i] = edges[i].w * resistances[i];
  return lev;
}

}  // namespace spar::resistance
